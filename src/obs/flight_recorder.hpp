// Per-session flight recorder: a fixed-budget ring of compact binary
// events.
//
// At gateway scale (PR 6 parks 100k sessions per worker) a full Tracer per
// session is unaffordable as an always-on tool — spans carry strings and
// the engine would hold N complete timelines to answer questions about the
// handful of sessions that matter. The flight recorder inverts the cost
// model, the way aircraft do: every session continuously records its last
// `capacity` events into a preallocated 16-byte/event ring (stage
// enter/exit, park/wake, retry, admission verdict, cache hit/miss), and
// only *anomalous* sessions — failed, shed, or in the p99 latency tail —
// dump their timeline to the trace sink. Healthy sessions cost exactly
// ring_bytes = capacity * 16, accounted by the session engine next to
// bytes_per_parked_session.
//
// Concurrency model: a recorder belongs to ONE session and the engine
// serializes a session's stages (sessions sharing a track never overlap,
// and one session's stages are strictly ordered by the event loop), so
// writes are single-threaded by construction — record() takes no lock and
// issues no atomics. Charge sites reach the recorder through the same
// thread-binding pattern as Tracer/MetricsRegistry: the engine binds the
// session's recorder around a stage dispatch (ScopedFlightRecorder) and
// deep call sites (resilience retries, VCEK cache probes) use the free
// flight_record() helper, which is a no-op costing one thread-local load
// when no recorder is bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace revelio::obs {

/// What happened. `arg` and `value` are type-specific:
///   kStageEnter/kStageExit  arg = stage id (core::SessionState), value =
///                           stage virtual duration in us (exit only)
///   kPark                   value = park delay in us
///   kWake                   arg = stage id about to run
///   kRetry                  arg = attempt number, value = backoff in us
///   kAdmission              arg = gate id (1 = evidence, 2 = kds),
///                           value = verdict (0 admit, 1 parked, 2 shed)
///   kCacheHit/kCacheMiss    arg = cache id (1 = vcek, 2 = chain)
///   kVerdict                arg = 1 accepted / 0 rejected
enum class FlightEventType : std::uint8_t {
  kStageEnter = 1,
  kStageExit = 2,
  kPark = 3,
  kWake = 4,
  kRetry = 5,
  kAdmission = 6,
  kCacheHit = 7,
  kCacheMiss = 8,
  kVerdict = 9,
};

const char* to_string(FlightEventType type);

class FlightRecorder {
 public:
  /// One recorded event. 16 bytes, fixed — the ring's whole budget is
  /// capacity * sizeof(Event), no heap beyond the preallocated vector.
  struct Event {
    std::uint64_t t_us = 0;   // virtual clock at record time
    std::uint32_t value = 0;  // type-specific (see FlightEventType)
    std::uint16_t arg = 0;    // type-specific (see FlightEventType)
    std::uint8_t type = 0;    // FlightEventType
    std::uint8_t pad = 0;
  };
  static_assert(sizeof(Event) == 16, "flight events must stay compact");

  /// Preallocates the ring; capacity is clamped to >= 1.
  explicit FlightRecorder(std::size_t capacity_events = 32);

  /// Appends one event stamped with the thread's SimClock (0 if unbound).
  /// Single-writer by contract; overwrites the oldest event when full.
  void record(FlightEventType type, std::uint16_t arg = 0,
              std::uint32_t value = 0);
  /// Same, with an explicit timestamp — for the engine driver, whose
  /// thread does not bind the session's world clock.
  void record_at(std::uint64_t t_us, FlightEventType type,
                 std::uint16_t arg = 0, std::uint32_t value = 0);

  std::size_t capacity() const { return ring_.size(); }
  /// Total events ever recorded (>= retained when the ring wrapped).
  std::uint64_t recorded() const { return count_; }
  /// Events lost to ring wrap-around.
  std::uint64_t dropped() const {
    return count_ > ring_.size() ? count_ - ring_.size() : 0;
  }
  /// The ring's fixed memory cost, for the engine's byte accounting.
  std::size_t bytes() const { return ring_.size() * sizeof(Event); }

  /// Retained events, oldest first.
  std::vector<Event> events() const;

  /// One JSON object — the anomaly dump: session id, dump reason
  /// ("failed" / "shed" / "p99_tail"), drop count, and the retained
  /// timeline with symbolic event names. Stage/gate/cache ids stay
  /// numeric; the mapping is documented on FlightEventType.
  std::string to_json(std::uint64_t session, const std::string& reason) const;

 private:
  std::vector<Event> ring_;
  std::uint64_t count_ = 0;  // next slot = count_ % ring_.size()
};

/// The recorder bound to this thread, or nullptr. Binding follows the
/// Tracer/MetricsRegistry pattern: the engine binds a session's recorder
/// around each stage dispatch.
FlightRecorder* flight_recorder();

/// Binds `r` as this thread's recorder (nullptr unbinds). Returns the
/// previous binding. Prefer ScopedFlightRecorder.
FlightRecorder* set_flight_recorder(FlightRecorder* r);

/// Records into the thread-bound recorder; a no-op (one thread-local
/// load) when none is bound — how deep charge sites (retry backoff, cache
/// probes) stay free outside engine runs.
void flight_record(FlightEventType type, std::uint16_t arg = 0,
                   std::uint32_t value = 0);

class ScopedFlightRecorder {
 public:
  explicit ScopedFlightRecorder(FlightRecorder& r)
      : prev_(set_flight_recorder(&r)) {}
  ~ScopedFlightRecorder() { set_flight_recorder(prev_); }

  ScopedFlightRecorder(const ScopedFlightRecorder&) = delete;
  ScopedFlightRecorder& operator=(const ScopedFlightRecorder&) = delete;

 private:
  FlightRecorder* prev_;
};

}  // namespace revelio::obs

#include "obs/flight_recorder.hpp"

#include "common/sim_clock.hpp"
#include "obs/json.hpp"

namespace revelio::obs {

const char* to_string(FlightEventType type) {
  switch (type) {
    case FlightEventType::kStageEnter:
      return "stage_enter";
    case FlightEventType::kStageExit:
      return "stage_exit";
    case FlightEventType::kPark:
      return "park";
    case FlightEventType::kWake:
      return "wake";
    case FlightEventType::kRetry:
      return "retry";
    case FlightEventType::kAdmission:
      return "admission";
    case FlightEventType::kCacheHit:
      return "cache_hit";
    case FlightEventType::kCacheMiss:
      return "cache_miss";
    case FlightEventType::kVerdict:
      return "verdict";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity_events) {
  ring_.resize(capacity_events == 0 ? 1 : capacity_events);
}

void FlightRecorder::record(FlightEventType type, std::uint16_t arg,
                            std::uint32_t value) {
  const SimClock* clock = SimClock::current();
  record_at(clock == nullptr ? 0 : clock->now_us(), type, arg, value);
}

void FlightRecorder::record_at(std::uint64_t t_us, FlightEventType type,
                               std::uint16_t arg, std::uint32_t value) {
  Event& slot = ring_[count_ % ring_.size()];
  slot.t_us = t_us;
  slot.value = value;
  slot.arg = arg;
  slot.type = static_cast<std::uint8_t>(type);
  ++count_;
}

std::vector<FlightRecorder::Event> FlightRecorder::events() const {
  std::vector<Event> out;
  const std::size_t retained =
      count_ < ring_.size() ? static_cast<std::size_t>(count_) : ring_.size();
  out.reserve(retained);
  // Oldest retained event first: when wrapped, that is the current slot.
  const std::size_t start =
      count_ < ring_.size() ? 0 : static_cast<std::size_t>(count_ % ring_.size());
  for (std::size_t i = 0; i < retained; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string FlightRecorder::to_json(std::uint64_t session,
                                    const std::string& reason) const {
  std::string out = "{\"session\":" + std::to_string(session) +
                    ",\"reason\":\"" + json_escape(reason) +
                    "\",\"recorded\":" + std::to_string(count_) +
                    ",\"dropped\":" + std::to_string(dropped()) +
                    ",\"events\":[";
  bool first = true;
  for (const Event& e : events()) {
    if (!first) out += ",";
    first = false;
    out += "{\"t_us\":" + std::to_string(e.t_us) + ",\"type\":\"" +
           to_string(static_cast<FlightEventType>(e.type)) +
           "\",\"arg\":" + std::to_string(e.arg) +
           ",\"value\":" + std::to_string(e.value) + "}";
  }
  out += "]}";
  return out;
}

namespace {
thread_local FlightRecorder* thread_recorder = nullptr;
}  // namespace

FlightRecorder* flight_recorder() { return thread_recorder; }

FlightRecorder* set_flight_recorder(FlightRecorder* r) {
  FlightRecorder* prev = thread_recorder;
  thread_recorder = r;
  return prev;
}

void flight_record(FlightEventType type, std::uint16_t arg,
                   std::uint32_t value) {
  if (thread_recorder != nullptr) thread_recorder->record(type, arg, value);
}

}  // namespace revelio::obs

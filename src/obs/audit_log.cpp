#include "obs/audit_log.hpp"

#include <algorithm>
#include <cstring>

#include "common/hex.hpp"
#include "crypto/merkle.hpp"

namespace revelio::obs {

namespace {

constexpr char kMagic[8] = {'R', 'V', 'A', 'U', 'D', 'T', '0', '1'};
constexpr std::size_t kHeaderSize = 8 + 4 + 4;  // magic, interval, rec size
constexpr std::uint8_t kFrameRecord = 0x01;
constexpr std::uint8_t kFrameCheckpoint = 0x02;
constexpr std::uint8_t kFrameTrailer = 0x03;
// checkpoint frame body: root(32) || u64be(total records so far)
constexpr std::size_t kCheckpointBody = 32 + 8;

crypto::Digest32 genesis_head() {
  static const char kSeed[] = "revelio-audit-v1";
  return crypto::sha256(ByteView(
      reinterpret_cast<const std::uint8_t*>(kSeed), sizeof(kSeed) - 1));
}

/// h' = SHA-256(h || frame_type || frame_body) — the one chaining rule
/// both append and verify use.
crypto::Digest32 chain(const crypto::Digest32& head, std::uint8_t frame_type,
                       ByteView body) {
  Bytes buf;
  buf.reserve(32 + 1 + body.size());
  append(buf, head.view());
  append_u8(buf, frame_type);
  append(buf, body);
  return crypto::sha256(buf);
}

Error tamper(std::uint64_t frame, std::string detail) {
  return Error::make("audit.tamper",
                     "frame " + std::to_string(frame) + ": " + std::move(detail));
}

}  // namespace

Bytes AuditRecord::serialize() const {
  Bytes out;
  out.reserve(kWireSize);
  append_u64be(out, session);
  append_u64be(out, virt_us);
  append_u8(out, accepted ? 1 : 0);
  append_u8(out, checks);
  char step[kFailureStepSize] = {};
  std::memcpy(step, failure_step.data(),
              std::min(failure_step.size(), kFailureStepSize - 1));
  out.insert(out.end(), step, step + kFailureStepSize);
  append(out, measurement.view());
  append(out, vcek_chain.view());
  append_u64be(out, tcb);
  append(out, evidence_digest.view());
  return out;
}

AuditRecord AuditRecord::parse(ByteView wire) {
  AuditRecord rec;
  rec.session = read_u64be(wire, 0);
  rec.virt_us = read_u64be(wire, 8);
  rec.accepted = wire[16] != 0;
  rec.checks = wire[17];
  const char* step = reinterpret_cast<const char*>(wire.data() + 18);
  rec.failure_step.assign(step, strnlen(step, kFailureStepSize));
  rec.measurement = crypto::Digest48::from(wire.subspan(18 + kFailureStepSize, 48));
  rec.vcek_chain = crypto::Digest32::from(wire.subspan(18 + kFailureStepSize + 48, 32));
  rec.tcb = read_u64be(wire, 18 + kFailureStepSize + 48 + 32);
  rec.evidence_digest =
      crypto::Digest32::from(wire.subspan(18 + kFailureStepSize + 48 + 32 + 8, 32));
  return rec;
}

AuditLog::AuditLog(std::size_t checkpoint_interval)
    : interval_(checkpoint_interval == 0 ? 1 : checkpoint_interval),
      head_(genesis_head()) {}

void AuditLog::append(const AuditRecord& record) {
  const Bytes wire = record.serialize();
  std::lock_guard<std::mutex> lock(mu_);
  append_u8(frames_, kFrameRecord);
  revelio::append(frames_, wire);
  head_ = chain(head_, kFrameRecord, wire);
  epoch_leaves_.push_back(crypto::sha256(wire));
  ++records_;
  if (record.accepted) ++accepted_;
  if (epoch_leaves_.size() >= interval_) append_checkpoint_locked();
}

void AuditLog::append_checkpoint_locked() {
  const crypto::Digest32 root =
      crypto::MerkleTree::from_leaves(epoch_leaves_).root();
  epoch_leaves_.clear();
  Bytes body;
  body.reserve(kCheckpointBody);
  revelio::append(body, root.view());
  append_u64be(body, records_);
  append_u8(frames_, kFrameCheckpoint);
  revelio::append(frames_, body);
  head_ = chain(head_, kFrameCheckpoint, body);
  ++checkpoints_;
}

std::uint64_t AuditLog::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::uint64_t AuditLog::checkpoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoints_;
}

crypto::Digest32 AuditLog::head() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_;
}

Bytes AuditLog::serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  Bytes out;
  out.reserve(kHeaderSize + frames_.size() + 1 + 32);
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  append_u32be(out, static_cast<std::uint32_t>(interval_));
  append_u32be(out, static_cast<std::uint32_t>(AuditRecord::kWireSize));
  revelio::append(out, frames_);
  append_u8(out, kFrameTrailer);
  revelio::append(out, head_.view());
  return out;
}

Result<AuditLog::VerifySummary> AuditLog::verify(ByteView stream) {
  if (stream.size() < kHeaderSize + 1 + 32) {
    return Error::make("audit.truncated", "stream shorter than header+trailer");
  }
  if (std::memcmp(stream.data(), kMagic, sizeof(kMagic)) != 0) {
    return Error::make("audit.bad_magic", "not an audit stream");
  }
  const std::uint64_t interval = read_u32be(stream, 8);
  const std::uint64_t rec_size = read_u32be(stream, 12);
  if (interval == 0 || rec_size != AuditRecord::kWireSize) {
    return Error::make("audit.bad_header",
                       "interval=" + std::to_string(interval) +
                           " record_size=" + std::to_string(rec_size));
  }

  VerifySummary summary;
  crypto::Digest32 head = genesis_head();
  std::vector<crypto::Digest32> epoch;
  std::uint64_t frame = 0;
  std::size_t off = kHeaderSize;
  bool saw_trailer = false;

  while (off < stream.size()) {
    const std::uint8_t type = stream[off];
    ++off;
    ++frame;
    if (type == kFrameRecord) {
      if (off + rec_size > stream.size()) {
        return tamper(frame, "truncated record frame");
      }
      const ByteView wire = stream.subspan(off, rec_size);
      off += rec_size;
      head = chain(head, kFrameRecord, wire);
      epoch.push_back(crypto::sha256(wire));
      ++summary.records;
      if (wire[16] != 0) {
        ++summary.accepted;
      } else {
        ++summary.rejected;
      }
      if (epoch.size() > interval) {
        return tamper(frame, "missing checkpoint after " +
                                 std::to_string(interval) + " records");
      }
    } else if (type == kFrameCheckpoint) {
      if (off + kCheckpointBody > stream.size()) {
        return tamper(frame, "truncated checkpoint frame");
      }
      const ByteView body = stream.subspan(off, kCheckpointBody);
      off += kCheckpointBody;
      if (epoch.size() != interval) {
        return tamper(frame, "checkpoint after " +
                                 std::to_string(epoch.size()) + " records, " +
                                 "expected " + std::to_string(interval));
      }
      const crypto::Digest32 expected =
          crypto::MerkleTree::from_leaves(epoch).root();
      if (crypto::Digest32::from(body.subspan(0, 32)) != expected) {
        return tamper(frame, "checkpoint Merkle root mismatch");
      }
      if (read_u64be(body, 32) != summary.records) {
        return tamper(frame, "checkpoint record count mismatch");
      }
      epoch.clear();
      head = chain(head, kFrameCheckpoint, body);
      ++summary.checkpoints;
    } else if (type == kFrameTrailer) {
      if (off + 32 > stream.size()) {
        return tamper(frame, "truncated trailer");
      }
      if (crypto::Digest32::from(stream.subspan(off, 32)) != head) {
        return tamper(frame, "chain head mismatch — history was modified");
      }
      off += 32;
      if (off != stream.size()) {
        return tamper(frame, "trailing bytes after trailer");
      }
      saw_trailer = true;
    } else {
      return tamper(frame, "unknown frame type " + std::to_string(type));
    }
  }
  if (!saw_trailer) {
    return Error::make("audit.truncated", "stream ends without trailer");
  }
  summary.head_hex = to_hex(head.view());
  return summary;
}

}  // namespace revelio::obs

#include "obs/audit_log.hpp"

#include <algorithm>
#include <cstring>

#include "common/hex.hpp"
#include "crypto/merkle.hpp"

namespace revelio::obs {

namespace {

constexpr char kMagic[8] = {'R', 'V', 'A', 'U', 'D', 'T', '0', '1'};
constexpr std::size_t kHeaderSize = 8 + 4 + 4;  // magic, interval, rec size
constexpr std::uint8_t kFrameRecord = 0x01;
constexpr std::uint8_t kFrameCheckpoint = 0x02;
constexpr std::uint8_t kFrameTrailer = 0x03;
// checkpoint frame body: root(32) || u64be(total records so far)
constexpr std::size_t kCheckpointBody = 32 + 8;

crypto::Digest32 genesis_head() {
  static const char kSeed[] = "revelio-audit-v1";
  return crypto::sha256(ByteView(
      reinterpret_cast<const std::uint8_t*>(kSeed), sizeof(kSeed) - 1));
}

/// h' = SHA-256(h || frame_type || frame_body) — the one chaining rule
/// both append and verify use.
crypto::Digest32 chain(const crypto::Digest32& head, std::uint8_t frame_type,
                       ByteView body) {
  Bytes buf;
  buf.reserve(32 + 1 + body.size());
  append(buf, head.view());
  append_u8(buf, frame_type);
  append(buf, body);
  return crypto::sha256(buf);
}

std::string frame_detail(std::uint64_t frame, std::string detail) {
  return "frame " + std::to_string(frame) + ": " + std::move(detail);
}

/// One pass over a serialized stream, shared by verify(), verify_prefix()
/// and restore(). Stops at the first problem and records whether it was a
/// clean truncation (the bytes just end — what a crash produces) or
/// interior damage (valid-length bytes that fail the chain).
struct WalkState {
  AuditLog::VerifySummary summary;
  std::vector<crypto::Digest32> epoch;  // record hashes since last checkpoint
  crypto::Digest32 head;
  std::uint64_t interval = 0;
  std::uint64_t frames = 0;        // fully verified frames
  std::size_t frames_end = 0;      // offset one past the last verified frame
  bool complete = false;
  bool truncated = false;
  std::string failure_code;
  std::string failure_detail;
};

Result<WalkState> walk_stream(ByteView stream) {
  if (stream.size() < kHeaderSize) {
    return Error::make("audit.truncated", "stream shorter than header");
  }
  if (std::memcmp(stream.data(), kMagic, sizeof(kMagic)) != 0) {
    return Error::make("audit.bad_magic", "not an audit stream");
  }
  WalkState st;
  st.interval = read_u32be(stream, 8);
  const std::uint64_t rec_size = read_u32be(stream, 12);
  if (st.interval == 0 || rec_size != AuditRecord::kWireSize) {
    return Error::make("audit.bad_header",
                       "interval=" + std::to_string(st.interval) +
                           " record_size=" + std::to_string(rec_size));
  }

  st.head = genesis_head();
  st.frames_end = kHeaderSize;
  std::size_t off = kHeaderSize;
  std::uint64_t frame = 0;

  auto stop_truncated = [&](std::string code, std::string detail) {
    st.truncated = true;
    st.failure_code = std::move(code);
    st.failure_detail = frame_detail(frame, std::move(detail));
    return st;
  };
  auto stop_tamper = [&](std::string detail) {
    st.truncated = false;
    st.failure_code = "audit.tamper";
    st.failure_detail = frame_detail(frame, std::move(detail));
    return st;
  };

  while (off < stream.size()) {
    const std::uint8_t type = stream[off];
    ++off;
    ++frame;
    if (type == kFrameRecord) {
      if (off + rec_size > stream.size()) {
        return stop_truncated("audit.record_truncated",
                              "record frame cut short by " +
                                  std::to_string(off + rec_size - stream.size()) +
                                  " bytes");
      }
      const ByteView wire = stream.subspan(off, rec_size);
      off += rec_size;
      st.head = chain(st.head, kFrameRecord, wire);
      st.epoch.push_back(crypto::sha256(wire));
      ++st.summary.records;
      if (wire[16] != 0) {
        ++st.summary.accepted;
      } else {
        ++st.summary.rejected;
      }
      if (st.epoch.size() > st.interval) {
        return stop_tamper("missing checkpoint after " +
                           std::to_string(st.interval) + " records");
      }
    } else if (type == kFrameCheckpoint) {
      if (off + kCheckpointBody > stream.size()) {
        return stop_truncated("audit.checkpoint_truncated",
                              "checkpoint frame cut short");
      }
      const ByteView body = stream.subspan(off, kCheckpointBody);
      off += kCheckpointBody;
      if (st.epoch.size() != st.interval) {
        return stop_tamper("checkpoint after " +
                           std::to_string(st.epoch.size()) + " records, " +
                           "expected " + std::to_string(st.interval));
      }
      const crypto::Digest32 expected =
          crypto::MerkleTree::from_leaves(st.epoch).root();
      if (crypto::Digest32::from(body.subspan(0, 32)) != expected) {
        return stop_tamper("checkpoint Merkle root mismatch");
      }
      if (read_u64be(body, 32) != st.summary.records) {
        return stop_tamper("checkpoint record count mismatch");
      }
      st.epoch.clear();
      st.head = chain(st.head, kFrameCheckpoint, body);
      ++st.summary.checkpoints;
    } else if (type == kFrameTrailer) {
      if (off + 32 > stream.size()) {
        return stop_truncated("audit.trailer_truncated", "trailer cut short");
      }
      if (crypto::Digest32::from(stream.subspan(off, 32)) != st.head) {
        return stop_tamper("chain head mismatch — history was modified");
      }
      off += 32;
      if (off != stream.size()) {
        return stop_tamper("trailing bytes after trailer");
      }
      st.complete = true;
      st.summary.head_hex = to_hex(st.head.view());
      return st;
    } else {
      return stop_tamper("unknown frame type " + std::to_string(type));
    }
    ++st.frames;
    st.frames_end = off;
  }
  st.truncated = true;
  st.failure_code = "audit.truncated";
  st.failure_detail = "stream ends without trailer";
  return st;
}

}  // namespace

Bytes AuditRecord::serialize() const {
  Bytes out;
  out.reserve(kWireSize);
  append_u64be(out, session);
  append_u64be(out, virt_us);
  append_u8(out, accepted ? 1 : 0);
  append_u8(out, checks);
  char step[kFailureStepSize] = {};
  std::memcpy(step, failure_step.data(),
              std::min(failure_step.size(), kFailureStepSize - 1));
  out.insert(out.end(), step, step + kFailureStepSize);
  append(out, measurement.view());
  append(out, vcek_chain.view());
  append_u64be(out, tcb);
  append(out, evidence_digest.view());
  return out;
}

Result<AuditRecord> AuditRecord::parse(ByteView wire) {
  if (wire.size() < kWireSize) {
    return Error::make("audit.record_truncated",
                       "record wire is " + std::to_string(wire.size()) +
                           " bytes, need " + std::to_string(kWireSize));
  }
  if (wire.size() > kWireSize) {
    return Error::make("audit.record_oversized",
                       "record wire is " + std::to_string(wire.size()) +
                           " bytes, expected " + std::to_string(kWireSize));
  }
  AuditRecord rec;
  rec.session = read_u64be(wire, 0);
  rec.virt_us = read_u64be(wire, 8);
  rec.accepted = wire[16] != 0;
  rec.checks = wire[17];
  const char* step = reinterpret_cast<const char*>(wire.data() + 18);
  rec.failure_step.assign(step, strnlen(step, kFailureStepSize));
  rec.measurement = crypto::Digest48::from(wire.subspan(18 + kFailureStepSize, 48));
  rec.vcek_chain = crypto::Digest32::from(wire.subspan(18 + kFailureStepSize + 48, 32));
  rec.tcb = read_u64be(wire, 18 + kFailureStepSize + 48 + 32);
  rec.evidence_digest =
      crypto::Digest32::from(wire.subspan(18 + kFailureStepSize + 48 + 32 + 8, 32));
  return rec;
}

AuditLog::AuditLog(std::size_t checkpoint_interval)
    : interval_(checkpoint_interval == 0 ? 1 : checkpoint_interval),
      head_(genesis_head()) {}

void AuditLog::emit_locked(std::uint8_t frame_type, ByteView body) {
  if (!sink_) return;
  if (auto st = sink_(frame_type, body); !st.ok()) {
    ++sink_failures_;
    last_sink_error_ = st.error().to_string();
  }
}

void AuditLog::append(const AuditRecord& record) {
  const Bytes wire = record.serialize();
  std::lock_guard<std::mutex> lock(mu_);
  append_u8(frames_, kFrameRecord);
  revelio::append(frames_, wire);
  head_ = chain(head_, kFrameRecord, wire);
  epoch_leaves_.push_back(crypto::sha256(wire));
  ++records_;
  if (record.accepted) ++accepted_;
  emit_locked(kFrameRecord, wire);
  if (epoch_leaves_.size() >= interval_) append_checkpoint_locked();
}

void AuditLog::append_checkpoint_locked() {
  const crypto::Digest32 root =
      crypto::MerkleTree::from_leaves(epoch_leaves_).root();
  epoch_leaves_.clear();
  Bytes body;
  body.reserve(kCheckpointBody);
  revelio::append(body, root.view());
  append_u64be(body, records_);
  append_u8(frames_, kFrameCheckpoint);
  revelio::append(frames_, body);
  head_ = chain(head_, kFrameCheckpoint, body);
  ++checkpoints_;
  emit_locked(kFrameCheckpoint, body);
}

void AuditLog::set_sink(FrameSink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

std::uint64_t AuditLog::sink_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sink_failures_;
}

std::string AuditLog::last_sink_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_sink_error_;
}

std::uint64_t AuditLog::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::uint64_t AuditLog::checkpoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoints_;
}

crypto::Digest32 AuditLog::head() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_;
}

Bytes AuditLog::serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return assemble_stream(interval_, frames_, head_);
}

crypto::Digest32 AuditLog::chain_step(const crypto::Digest32& head,
                                      std::uint8_t frame_type, ByteView body) {
  return chain(head, frame_type, body);
}

Bytes AuditLog::assemble_stream(std::size_t checkpoint_interval,
                                ByteView frames, const crypto::Digest32& head) {
  Bytes out;
  out.reserve(kHeaderSize + frames.size() + 1 + 32);
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  append_u32be(out, static_cast<std::uint32_t>(checkpoint_interval));
  append_u32be(out, static_cast<std::uint32_t>(AuditRecord::kWireSize));
  revelio::append(out, frames);
  append_u8(out, kFrameTrailer);
  revelio::append(out, head.view());
  return out;
}

Result<AuditLog::VerifySummary> AuditLog::verify(ByteView stream) {
  auto walked = walk_stream(stream);
  if (!walked.ok()) return walked.error();
  if (walked->complete) return walked->summary;
  // Keep verify()'s historical contract: any mid-frame damage — even one
  // that looks like truncation — is a verification failure with code
  // audit.tamper; only a stream that stops cleanly between frames gets
  // audit.truncated. Callers who need the torn-tail distinction use
  // verify_prefix().
  if (walked->failure_code == "audit.truncated") {
    return Error::make("audit.truncated", walked->failure_detail);
  }
  return Error::make("audit.tamper", walked->failure_detail);
}

Result<AuditLog::PrefixSummary> AuditLog::verify_prefix(ByteView stream) {
  auto walked = walk_stream(stream);
  if (!walked.ok()) return walked.error();
  PrefixSummary out;
  out.summary = walked->summary;
  out.complete = walked->complete;
  out.truncated = walked->truncated;
  out.valid_frames = walked->frames;
  out.last_valid_record = walked->summary.records;
  if (!walked->complete) {
    out.failure_code = walked->failure_code;
    out.failure_detail = walked->failure_detail;
    // A truncated stream's summary covers only fully verified frames; a
    // record counted before the walk stopped on tampering stays counted —
    // the caller sees exactly how far trust extends either way.
    out.summary.head_hex.clear();
  }
  return out;
}

Status AuditLog::restore(ByteView stream) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_ != 0 || checkpoints_ != 0 || !frames_.empty()) {
    return Error::make("audit.restore_nonempty",
                       "restore() requires an empty log");
  }
  auto walked = walk_stream(stream);
  if (!walked.ok()) return walked.error();
  if (!walked->complete) {
    return Error::make(walked->failure_code, walked->failure_detail);
  }
  if (walked->interval != interval_) {
    return Error::make("audit.bad_header",
                       "stream checkpoint interval " +
                           std::to_string(walked->interval) +
                           " != log interval " + std::to_string(interval_));
  }
  head_ = walked->head;
  frames_.assign(stream.begin() + kHeaderSize,
                 stream.begin() + walked->frames_end);
  epoch_leaves_ = std::move(walked->epoch);
  records_ = walked->summary.records;
  checkpoints_ = walked->summary.checkpoints;
  accepted_ = walked->summary.accepted;
  return Status::success();
}

}  // namespace revelio::obs

// Minimal JSON emission helpers for the observability exporters.
//
// The exporters (metrics registry snapshot, span list, Chrome trace_event
// dump) only ever *write* JSON, and only from values we control, so a pair
// of formatting helpers is all that is needed — no DOM, no parser.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace revelio::obs {

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view s);

/// Renders a double the way JSON expects: no trailing garbage, "0" for
/// zero, enough digits to round-trip the values we export (%.6g).
std::string json_number(double v);

}  // namespace revelio::obs

// Durable backing for the attestation audit chain.
//
// Frames are persisted individually in the KV store as they are chained,
// together with the running head:
//
//   audit/meta          u32be checkpoint interval
//   audit/f/<seq hex>   u8 frame_type || frame body   (seq = 0,1,2,...)
//   audit/head          32-byte chain head after frame <seq>
//
// open_durable_audit() reconstructs the serialized stream from these keys
// and *re-verifies the whole hash chain* before the log accepts a single
// new record — a gateway can never resume on top of a history it cannot
// prove. A flipped byte anywhere in the persisted frames surfaces as
// audit.tamper and the open fails closed.
//
// Crash reconciliation: each frame commits as two KV puts (frame, then
// head). A crash between them leaves one frame whose head never landed;
// that frame was never fully committed, so the open drops it and resumes
// from the verified prefix — the only state a crash can create that is
// repaired, and only ever the final frame. Interior damage is never
// "repaired".
//
// The returned log carries an append-through sink that persists every new
// frame. If a sink write ever fails, persistence latches off (keeping the
// on-disk prefix verifiable) and the gap is surfaced via
// AuditLog::sink_failures(); the in-memory chain is unaffected.
//
// Lifetime: the KvStore must outlive the returned AuditLog.
#pragma once

#include <cstdint>
#include <memory>

#include "common/result.hpp"
#include "obs/audit_log.hpp"
#include "store/kv_store.hpp"

namespace revelio::obs {

struct DurableAudit {
  std::unique_ptr<AuditLog> log;  // sink attached, history restored
  std::uint64_t restored_records = 0;
  std::uint64_t restored_checkpoints = 0;
  bool reconciled_torn_frame = false;  // a crash-torn final frame was dropped
};

/// Opens (or initialises) the durable audit chain in `kv`. Fails closed on
/// any chain damage beyond a single torn final frame, and on a checkpoint
/// interval that does not match the persisted one.
Result<DurableAudit> open_durable_audit(store::KvStore& kv,
                                        std::size_t checkpoint_interval = 64);

/// Rebuilds the serialized audit stream from the store for offline
/// verification (tools/audit_verify --store), applying the same torn-final-
/// frame reconciliation as open_durable_audit(). The returned stream has
/// already passed AuditLog::verify(); damage fails the call with the
/// verifier's error. Fails with "audit.store_empty" when the store holds no
/// audit data at all.
Result<Bytes> load_audit_stream(store::KvStore& kv);

}  // namespace revelio::obs

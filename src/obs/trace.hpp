// Hierarchical tracing against both clocks.
//
// A Span is an RAII timed region charged against *two* clocks at once: the
// simulation's virtual clock (SimClock::current() — network latency and
// calibrated device models) and the real monotonic clock (actual CPU work:
// hashing, AES, ECDSA). A Tracer instance keeps the active-span stack —
// re-entrant but deliberately single-threaded: one tracer is driven by one
// thread. tracer() resolves per-thread: a thread with a bound tracer
// (ScopedThreadTracer — how the gateway gives every concurrent session its
// own isolated trace) sees that one; every other thread sees the
// process-wide instance, which remains main-thread-only by convention.
// Bulk-path thread-pool workers (common/parallel.hpp) must not construct
// Spans; bulk code opens one span around the parallel region and reports
// per-chunk work through the thread-safe metrics registry (metrics.hpp)
// instead. The Tracer also keeps a bounded ring of finished spans.
//
// Exports: finished_spans_json() (a plain span list with both durations
// and the parent links) and chrome_trace_json() (Chrome trace_event
// format — open the file in chrome://tracing or ui.perfetto.dev; the two
// clocks appear as two timeline rows of the same process).
//
// Tracing is OFF by default: a Span constructed while the tracer is
// disabled does nothing and costs two branches. Metrics (metrics.hpp)
// stay on unconditionally.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace revelio::obs {

struct SpanRecord {
  std::uint64_t id = 0;         // 1-based, unique within a tracer epoch
  std::uint64_t parent_id = 0;  // 0 = root span
  std::string name;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::uint64_t virt_start_us = 0;  // SimClock at begin/end (0 if no clock)
  std::uint64_t virt_end_us = 0;
  std::uint64_t real_start_ns = 0;  // monotonic clock at begin/end
  std::uint64_t real_end_ns = 0;
  std::uint32_t lane = 0;  // pool-worker lane at begin (0 = non-pool thread)

  std::uint64_t virt_us() const { return virt_end_us - virt_start_us; }
  double real_us() const {
    return static_cast<double>(real_end_ns - real_start_ns) / 1000.0;
  }
  /// First value of attribute `key`, or "" if absent.
  std::string attr(const std::string& key) const;
};

class Span;

class Tracer {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Correlates spans with the log stream: when on, span begin/end emit
  /// kDebug lines on component "obs" carrying the span id, so a captured
  /// log interleaves with a dumped trace via "span#<id>".
  void set_log_spans(bool on) { log_spans_ = on; }

  /// Bounded history: beyond this many finished spans the oldest are
  /// dropped (counted in dropped_spans()).
  void set_max_finished(std::size_t cap);

  /// Test hook: replaces the real monotonic clock so exports are
  /// deterministic. Pass nullptr to restore std::chrono::steady_clock.
  void set_real_clock(std::function<std::uint64_t()> now_ns);

  /// Drops finished spans and the dropped counter; keeps enablement and
  /// does not touch spans still open.
  void clear();

  const std::deque<SpanRecord>& finished_spans() const { return finished_; }
  std::uint64_t dropped_spans() const { return dropped_; }
  std::size_t open_spans() const { return open_.size(); }

  /// JSON array of finished spans in completion order (children precede
  /// their parent): id, parent_id, name, virtual/real start + duration,
  /// attrs.
  std::string finished_spans_json() const;

  /// Chrome trace_event dump: one complete ("ph":"X") event per span per
  /// clock, tid 1 = virtual clock, tid 2 = real clock for spans begun on
  /// the driving thread. Spans begun on a pool-worker lane (a staged batch
  /// fanned out via common::ThreadPool) put their real-clock event on
  /// tid 100+lane instead, each with its own thread_name row — so parallel
  /// batches render as parallel lanes, not one merged row. Real timestamps
  /// are rebased to the earliest span so the trace starts near t=0.
  std::string chrome_trace_json() const;

 private:
  friend class Span;

  std::uint64_t begin_span(std::string name);
  void annotate(std::uint64_t id, std::string key, std::string value);
  void end_span(std::uint64_t id);
  std::uint64_t real_now_ns() const;

  bool enabled_ = false;
  bool log_spans_ = false;
  std::size_t max_finished_ = 100000;
  std::uint64_t next_id_ = 1;
  std::uint64_t dropped_ = 0;
  std::function<std::uint64_t()> real_clock_;  // empty = steady_clock
  std::vector<SpanRecord> open_;               // active-span stack
  std::deque<SpanRecord> finished_;
};

/// The tracer instrumentation on this thread reports into: the tracer
/// bound to this thread via set_thread_tracer / ScopedThreadTracer if any,
/// else the process-wide instance.
Tracer& tracer();

/// Binds `t` as this thread's tracer (nullptr unbinds, restoring the
/// process-wide instance). Returns the previous binding so callers can
/// restore it. Prefer ScopedThreadTracer.
Tracer* set_thread_tracer(Tracer* t);

/// RAII thread-tracer binding: spans opened on this thread inside the
/// scope land in `t`, isolated from every other thread's spans. Used by
/// the session engine so interleaved concurrent sessions each produce a
/// coherent, self-contained trace. `t` must outlive the scope; every span
/// opened inside must also end inside.
class ScopedThreadTracer {
 public:
  explicit ScopedThreadTracer(Tracer& t) : prev_(set_thread_tracer(&t)) {}
  ~ScopedThreadTracer() { set_thread_tracer(prev_); }

  ScopedThreadTracer(const ScopedThreadTracer&) = delete;
  ScopedThreadTracer& operator=(const ScopedThreadTracer&) = delete;

 private:
  Tracer* prev_;
};

/// RAII span handle. Construct to open, destroy (or end()) to close.
/// Inactive (zero-cost) when the tracer is disabled at construction time.
class Span {
 public:
  explicit Span(std::string name);
  ~Span() { end(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void attr(const std::string& key, std::string value);
  void attr(const std::string& key, const char* value);
  void attr(const std::string& key, std::uint64_t value);
  void attr(const std::string& key, bool value);

  /// Closes the span early; idempotent, the destructor becomes a no-op.
  void end();

  /// 0 when inactive (tracer disabled at construction).
  std::uint64_t id() const { return id_; }

 private:
  std::uint64_t id_ = 0;
};

}  // namespace revelio::obs

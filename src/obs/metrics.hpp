// Process-wide metrics registry.
//
// Counters, gauges, fixed-bucket histograms and log-bucketed quantile
// summaries, named by the `subsystem.verb.unit` convention (see DESIGN.md
// "Observability"), with an optional label set rendered into the metric key
// Prometheus-style: `pki.chain_verify.result.count{result=ok}`. The
// registry is always on — incrementing a counter is one map lookup plus an
// atomic add, cheap enough for every hot path in the simulation.
//
// Thread-safety: the registry became shared state when the bulk-data fast
// path grew a thread pool (common/parallel.hpp), so it is now safe to use
// from pool workers. Map structure is guarded by a registry mutex;
// returned Counter/Gauge references stay valid forever (std::map nodes
// are stable) and their updates are lock-free atomics; Histogram::observe
// takes a per-histogram mutex, and Histogram::snapshot() reads all four
// fields under the same mutex (use it, not bucket_counts(), when updates
// may be in flight). Whole-map views (counters() etc.) are still meant
// for quiescent, test/exporter-time reads.
//
// Session isolation: metrics() resolves per-thread — a gateway worker
// with a registry bound via ScopedThreadMetrics reports into its own
// session registry, which the engine folds into the process-wide one at
// session end with merge_from() (counters/gauges add, histograms merge
// bucket-wise under both locks — safe when many sessions end at once).
//
// Exporters serialize a point-in-time snapshot with to_json(); benchmarks
// and the attack gallery read individual counters back with
// counter_value().
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace revelio::obs {

/// Label set attached to a metric name, e.g. {{"result", "ok"}}. Order is
/// preserved in the rendered key, so use a consistent order per metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  /// Saturating add: a counter that reaches UINT64_MAX pins there instead
  /// of wrapping — a wrapped counter would read as a rate reset downstream.
  /// A CAS loop (not fetch_add) so concurrent increments near the ceiling
  /// still pin instead of wrapping.
  void inc(std::uint64_t delta = 1) {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    std::uint64_t next;
    do {
      next = (cur + delta < cur) ? UINT64_MAX : cur + delta;
    } while (!value_.compare_exchange_weak(cur, next,
                                           std::memory_order_relaxed));
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations with
/// value <= bounds[i] (first matching bucket wins); one implicit +inf
/// bucket catches everything beyond the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  /// Thread-safe: serialized on an internal mutex (bucket search + three
  /// updates have to land atomically for count/sum to stay consistent).
  void observe(double value);

  /// Consistent point-in-time copy of buckets + count + sum, taken under
  /// the histogram mutex. The only safe way to read a histogram while
  /// observe()/merge_from() may be running on other threads.
  struct Snapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 (+inf last)
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;

  /// Folds another histogram's observations into this one. Thread-safe
  /// against concurrent observe()/merge_from() on *both* histograms: the
  /// source is snapshotted under its own lock, then the target updated
  /// under its lock (never both at once, so cross-merges cannot deadlock,
  /// and concurrent merges into one target cannot lose updates — the
  /// read-modify-write happens entirely under the target mutex). Matching
  /// bucket bounds merge bucket-wise; mismatched bounds fold the source's
  /// whole count into the +inf bucket (count/sum stay exact).
  void merge_from(const Histogram& other);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1,
  /// the last entry being the +inf bucket. Returns a reference into live
  /// storage — read it quiescent (tests, exporters), not mid-parallel-run;
  /// use snapshot() otherwise.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  double sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<double> bounds_;         // ascending, fixed after construction
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Log-bucketed quantile summary: observations land in log-linear buckets
/// (kSubBuckets per power of two), so any quantile can be estimated with a
/// bounded *relative* error — unlike a fixed-bucket Histogram, whose error
/// explodes outside its hand-picked bounds. This is what the exporters use
/// for tail latency (p99/p999): the bucketing scheme is fixed by the class,
/// so two summaries always merge exactly (bucket-wise), and merging N
/// per-thread summaries is bit-identical to observing the union.
///
/// Thread-safety: observe/quantile/snapshot/merge_from serialize on an
/// internal mutex, same policy as Histogram. merge_from copies the source
/// under its lock, then folds under the target's — never both at once.
class Summary {
 public:
  /// Buckets per power of two. Bucket width / lower bound = 1/32, so a
  /// quantile estimated at a bucket midpoint is within ~1.6% of the exact
  /// nearest-rank value (tests gate the bound at 4%).
  static constexpr std::int32_t kSubBuckets = 32;

  void observe(double value);

  /// Nearest-rank quantile estimate for q in [0, 1]: the midpoint of the
  /// log bucket holding the rank, clamped to the exact observed [min, max]
  /// (so q=0 / q=1 are exact). Returns 0 when empty.
  double quantile(double q) const;

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
  };
  Snapshot snapshot() const;

  std::uint64_t count() const;
  double sum() const;

  /// Folds another summary's observations into this one, bucket-wise and
  /// exact (the bucketing scheme is shared by construction).
  void merge_from(const Summary& other);

  /// Bucket index of a value (<= 0 lands in a dedicated floor bucket).
  /// Exposed for the estimator tests.
  static std::int32_t bucket_of(double value);
  /// Representative value (bucket midpoint) for an index from bucket_of.
  static double bucket_mid(std::int32_t bucket);

 private:
  double quantile_locked(double q) const;

  mutable std::mutex mu_;
  std::map<std::int32_t, std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Lookup-or-create is guarded by the registry mutex; the returned
  /// reference is stable for the registry's lifetime (map nodes never
  /// move) and safe to update from any thread.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// The first caller fixes the bucket bounds. Re-registering an existing
  /// histogram with *different* bounds is a programming error and throws
  /// std::invalid_argument naming the key and both bound lists — silently
  /// keeping the first bounds (the old behaviour) made the second caller's
  /// buckets quietly meaningless.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const Labels& labels = {});
  /// Log-bucketed quantile summary; no bounds to conflict on.
  Summary& summary(const std::string& name, const Labels& labels = {});

  /// Read-only probe: the counter's value if it exists, else 0. Tests and
  /// the attack gallery assert on deltas of these.
  std::uint64_t counter_value(const std::string& name,
                              const Labels& labels = {}) const;

  /// Snapshot of everything:
  /// {"counters":{...},"gauges":{...},"histograms":{...}} plus a
  /// "summaries" section (count/sum/min/max/p50/p90/p99/p999) when any
  /// summaries exist.
  std::string to_json() const;

  /// Folds every metric of `other` into this registry: counters and gauges
  /// add their values, histograms merge via Histogram::merge_from (first
  /// merge of a new key adopts the source's bucket bounds), summaries merge
  /// exactly via Summary::merge_from. Thread-safe on
  /// both sides; many sessions may merge into the process registry
  /// concurrently while other threads keep updating it. `other` should be
  /// quiescent (a finished session's registry) for an exact fold.
  void merge_from(const MetricsRegistry& other);

  void reset();

  /// Canonical key: `name` or `name{k1=v1,k2=v2}` (labels in given order).
  static std::string render_key(const std::string& name, const Labels& labels);

  /// Whole-map views for tests and exporters. Iterating these races with
  /// concurrent metric *creation* — call them only when no pool work is in
  /// flight (updates to already-created metrics are fine to miss).
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, Summary>& summaries() const {
    return summaries_;
  }

 private:
  mutable std::mutex mu_;  // guards map structure, not metric values
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, Summary> summaries_;
};

/// The registry instrumentation on this thread reports into: the registry
/// bound to this thread via set_thread_metrics / ScopedThreadMetrics if
/// any, else the process-wide instance.
MetricsRegistry& metrics();

/// Binds `m` as this thread's registry (nullptr unbinds). Returns the
/// previous binding. Prefer ScopedThreadMetrics.
MetricsRegistry* set_thread_metrics(MetricsRegistry* m);

/// RAII thread-registry binding: metrics recorded on this thread inside
/// the scope land in `m` — how the session engine isolates per-session
/// series before folding them into the process registry with merge_from().
class ScopedThreadMetrics {
 public:
  explicit ScopedThreadMetrics(MetricsRegistry& m)
      : prev_(set_thread_metrics(&m)) {}
  ~ScopedThreadMetrics() { set_thread_metrics(prev_); }

  ScopedThreadMetrics(const ScopedThreadMetrics&) = delete;
  ScopedThreadMetrics& operator=(const ScopedThreadMetrics&) = delete;

 private:
  MetricsRegistry* prev_;
};

}  // namespace revelio::obs

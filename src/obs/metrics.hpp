// Process-wide metrics registry.
//
// Counters, gauges and fixed-bucket histograms, named by the
// `subsystem.verb.unit` convention (see DESIGN.md "Observability"), with an
// optional label set rendered into the metric key Prometheus-style:
// `pki.chain_verify.result.count{result=ok}`. The registry is always on —
// incrementing a counter is one map lookup plus an add, cheap enough for
// every hot path in the simulation — and, like the rest of the codebase,
// deliberately thread-unaware (deterministic single-threaded design).
//
// Exporters serialize a point-in-time snapshot with to_json(); benchmarks
// and the attack gallery read individual counters back with
// counter_value().
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace revelio::obs {

/// Label set attached to a metric name, e.g. {{"result", "ok"}}. Order is
/// preserved in the rendered key, so use a consistent order per metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  /// Saturating add: a counter that reaches UINT64_MAX pins there instead
  /// of wrapping — a wrapped counter would read as a rate reset downstream.
  void inc(std::uint64_t delta = 1) {
    value_ = (value_ + delta < value_) ? UINT64_MAX : value_ + delta;
  }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: bucket i counts observations with
/// value <= bounds[i] (first matching bucket wins); one implicit +inf
/// bucket catches everything beyond the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1,
  /// the last entry being the +inf bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;         // ascending
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// The first caller fixes the bucket bounds; later callers get the
  /// existing histogram whatever bounds they pass.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const Labels& labels = {});

  /// Read-only probe: the counter's value if it exists, else 0. Tests and
  /// the attack gallery assert on deltas of these.
  std::uint64_t counter_value(const std::string& name,
                              const Labels& labels = {}) const;

  /// Snapshot of everything:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;

  void reset();

  /// Canonical key: `name` or `name{k1=v1,k2=v2}` (labels in given order).
  static std::string render_key(const std::string& name, const Labels& labels);

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// The process-wide registry every instrumented subsystem reports into.
MetricsRegistry& metrics();

}  // namespace revelio::obs

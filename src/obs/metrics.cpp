#include "obs/metrics.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace revelio::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[i];
  ++count_;
  sum_ += value;
}

std::string MetricsRegistry::render_key(const std::string& name,
                                        const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name + "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ",";
    key += labels[i].first + "=" + labels[i].second;
  }
  key += "}";
  return key;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  const std::string key = render_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[key];
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  const std::string key = render_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[key];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const Labels& labels) {
  const std::string key = render_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  // try_emplace: Histogram owns a mutex, so it must be built in place —
  // and the existing entry must win the race, keeping first-caller bounds.
  return histograms_.try_emplace(key, std::move(bounds)).first->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name,
                                             const Labels& labels) const {
  const std::string key = render_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second.value();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [key, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":" + std::to_string(c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [key, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":" + json_number(g.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [key, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":{\"buckets\":[";
    const auto& bounds = h.bounds();
    const auto& counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ",";
      const std::string le =
          i < bounds.size() ? json_number(bounds[i]) : "\"+inf\"";
      out += "{\"le\":" + le + ",\"count\":" + std::to_string(counts[i]) + "}";
    }
    out += "],\"count\":" + std::to_string(h.count()) +
           ",\"sum\":" + json_number(h.sum()) + "}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace revelio::obs

#include "obs/metrics.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace revelio::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[i];
  ++count_;
  sum_ += value;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts = counts_;
  snap.count = count_;
  snap.sum = sum_;
  return snap;
}

void Histogram::merge_from(const Histogram& other) {
  // Copy the source under its own lock, update under ours — never both, so
  // two histograms merging into each other cannot deadlock.
  const Snapshot src = other.snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  if (src.bounds == bounds_) {
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += src.counts[i];
  } else {
    // Incompatible bucketing: keep count/sum exact, park the source's
    // observations in the +inf bucket rather than guessing a rebinning.
    counts_.back() += src.count;
  }
  count_ += src.count;
  sum_ += src.sum;
}

std::string MetricsRegistry::render_key(const std::string& name,
                                        const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name + "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ",";
    key += labels[i].first + "=" + labels[i].second;
  }
  key += "}";
  return key;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  const std::string key = render_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[key];
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  const std::string key = render_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[key];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const Labels& labels) {
  const std::string key = render_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  // try_emplace: Histogram owns a mutex, so it must be built in place —
  // and the existing entry must win the race, keeping first-caller bounds.
  return histograms_.try_emplace(key, std::move(bounds)).first->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name,
                                             const Labels& labels) const {
  const std::string key = render_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second.value();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [key, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":" + std::to_string(c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [key, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":" + json_number(g.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [key, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":{\"buckets\":[";
    // snapshot(): buckets/count/sum come from one locked read, so an
    // observe() racing with export cannot skew count against buckets.
    const Histogram::Snapshot snap = h.snapshot();
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      if (i > 0) out += ",";
      const std::string le =
          i < snap.bounds.size() ? json_number(snap.bounds[i]) : "\"+inf\"";
      out += "{\"le\":" + le +
             ",\"count\":" + std::to_string(snap.counts[i]) + "}";
    }
    out += "],\"count\":" + std::to_string(snap.count) +
           ",\"sum\":" + json_number(snap.sum) + "}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Stage 1: copy the source's values under its lock only. The staged
  // copies decouple the two registry locks — this function never holds
  // both, so concurrent cross-merges cannot deadlock.
  std::vector<std::pair<std::string, std::uint64_t>> counter_vals;
  std::vector<std::pair<std::string, double>> gauge_vals;
  std::vector<std::string> histogram_keys;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    counter_vals.reserve(other.counters_.size());
    for (const auto& [key, c] : other.counters_) {
      counter_vals.emplace_back(key, c.value());
    }
    gauge_vals.reserve(other.gauges_.size());
    for (const auto& [key, g] : other.gauges_) {
      gauge_vals.emplace_back(key, g.value());
    }
    histogram_keys.reserve(other.histograms_.size());
    for (const auto& [key, h] : other.histograms_) histogram_keys.push_back(key);
  }

  // Stage 2: fold into this registry. Counter/Gauge updates are atomic;
  // histogram folds go through Histogram::merge_from, whose target-side
  // read-modify-write runs under the target histogram's mutex — so any
  // number of sessions ending at once merge without losing updates.
  for (const auto& [key, value] : counter_vals) {
    if (value == 0) continue;
    std::lock_guard<std::mutex> lock(mu_);
    counters_[key].inc(value);
  }
  for (const auto& [key, value] : gauge_vals) {
    std::lock_guard<std::mutex> lock(mu_);
    gauges_[key].add(value);
  }
  for (const auto& key : histogram_keys) {
    // Re-find under the source lock (map *structure* needs it), then drop
    // it — the node reference stays valid forever, and merge_from locks
    // the histogram's own mutex for the actual read.
    const Histogram* src = nullptr;
    {
      std::lock_guard<std::mutex> lock(other.mu_);
      src = &other.histograms_.at(key);
    }
    Histogram* dst = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = histograms_.find(key);
      if (it != histograms_.end()) {
        dst = &it->second;
      } else {
        dst = &histograms_.try_emplace(key, src->bounds()).first->second;
      }
    }
    dst->merge_from(*src);
  }
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {
thread_local MetricsRegistry* thread_metrics = nullptr;
}  // namespace

MetricsRegistry* set_thread_metrics(MetricsRegistry* m) {
  MetricsRegistry* prev = thread_metrics;
  thread_metrics = m;
  return prev;
}

MetricsRegistry& metrics() {
  if (thread_metrics != nullptr) return *thread_metrics;
  static MetricsRegistry registry;
  return registry;
}

}  // namespace revelio::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/json.hpp"

namespace revelio::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[i];
  ++count_;
  sum_ += value;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts = counts_;
  snap.count = count_;
  snap.sum = sum_;
  return snap;
}

void Histogram::merge_from(const Histogram& other) {
  // Copy the source under its own lock, update under ours — never both, so
  // two histograms merging into each other cannot deadlock.
  const Snapshot src = other.snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  if (src.bounds == bounds_) {
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += src.counts[i];
  } else {
    // Incompatible bucketing: keep count/sum exact, park the source's
    // observations in the +inf bucket rather than guessing a rebinning.
    counts_.back() += src.count;
  }
  count_ += src.count;
  sum_ += src.sum;
}

namespace {

/// Floor bucket for values <= 0 (durations never go negative, but a zero
/// observation must still count somewhere).
constexpr std::int32_t kFloorBucket = std::numeric_limits<std::int32_t>::min();
/// Bias keeping (exponent * kSubBuckets + sub) positive for every finite
/// double exponent (frexp exponents span roughly [-1073, 1024]).
constexpr std::int32_t kExponentBias = 2048;

}  // namespace

std::int32_t Summary::bucket_of(double value) {
  if (!(value > 0.0)) return kFloorBucket;  // also catches NaN
  int exp = 0;
  const double m = std::frexp(value, &exp);  // value = m * 2^exp, m in [.5,1)
  auto sub = static_cast<std::int32_t>((m - 0.5) * 2.0 *
                                       static_cast<double>(kSubBuckets));
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  if (sub < 0) sub = 0;
  return (static_cast<std::int32_t>(exp) + kExponentBias) * kSubBuckets + sub;
}

double Summary::bucket_mid(std::int32_t bucket) {
  if (bucket == kFloorBucket) return 0.0;
  const std::int32_t exp = bucket / kSubBuckets - kExponentBias;
  const std::int32_t sub = bucket % kSubBuckets;
  const double lo =
      std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, exp - 1);
  const double hi =
      std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, exp - 1);
  return (lo + hi) / 2.0;
}

void Summary::observe(double value) {
  const std::int32_t bucket = bucket_of(value);
  std::lock_guard<std::mutex> lock(mu_);
  ++buckets_[bucket];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

double Summary::quantile_locked(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Nearest-rank: the rank-th smallest observation lives in the first
  // bucket whose cumulative count reaches the rank.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (const auto& [bucket, n] : buckets_) {
    cum += n;
    if (cum >= rank) {
      const double mid = bucket_mid(bucket);
      return std::min(max_, std::max(min_, mid));
    }
  }
  return max_;  // unreachable: cum == count_ >= rank after the loop
}

double Summary::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return quantile_locked(q);
}

Summary::Snapshot Summary::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = count_ == 0 ? 0.0 : min_;
  snap.max = count_ == 0 ? 0.0 : max_;
  snap.p50 = quantile_locked(0.50);
  snap.p90 = quantile_locked(0.90);
  snap.p99 = quantile_locked(0.99);
  snap.p999 = quantile_locked(0.999);
  return snap;
}

std::uint64_t Summary::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Summary::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

void Summary::merge_from(const Summary& other) {
  // Copy the source under its own lock, fold under ours — never both held,
  // so cross-merges cannot deadlock (same discipline as Histogram).
  std::map<std::int32_t, std::uint64_t> src_buckets;
  std::uint64_t src_count = 0;
  double src_sum = 0.0, src_min = 0.0, src_max = 0.0;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    src_buckets = other.buckets_;
    src_count = other.count_;
    src_sum = other.sum_;
    src_min = other.min_;
    src_max = other.max_;
  }
  if (src_count == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [bucket, n] : src_buckets) buckets_[bucket] += n;
  if (count_ == 0 || src_min < min_) min_ = src_min;
  if (count_ == 0 || src_max > max_) max_ = src_max;
  count_ += src_count;
  sum_ += src_sum;
}

std::string MetricsRegistry::render_key(const std::string& name,
                                        const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name + "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ",";
    key += labels[i].first + "=" + labels[i].second;
  }
  key += "}";
  return key;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  const std::string key = render_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[key];
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  const std::string key = render_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[key];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const Labels& labels) {
  const std::string key = render_key(name, labels);
  std::vector<double> sorted = bounds;
  std::sort(sorted.begin(), sorted.end());
  std::lock_guard<std::mutex> lock(mu_);
  // try_emplace: Histogram owns a mutex, so it must be built in place —
  // and the existing entry wins the race, keeping first-caller bounds.
  const auto [it, inserted] = histograms_.try_emplace(key, std::move(bounds));
  if (!inserted && it->second.bounds() != sorted) {
    auto render = [](const std::vector<double>& b) {
      std::string s = "[";
      for (std::size_t i = 0; i < b.size(); ++i) {
        if (i > 0) s += ",";
        s += std::to_string(b[i]);
      }
      return s + "]";
    };
    throw std::invalid_argument(
        "histogram '" + key + "' re-registered with conflicting bounds " +
        render(sorted) + " (existing: " + render(it->second.bounds()) + ")");
  }
  return it->second;
}

Summary& MetricsRegistry::summary(const std::string& name,
                                  const Labels& labels) {
  const std::string key = render_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  return summaries_[key];
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name,
                                             const Labels& labels) const {
  const std::string key = render_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second.value();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [key, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":" + std::to_string(c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [key, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":" + json_number(g.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [key, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":{\"buckets\":[";
    // snapshot(): buckets/count/sum come from one locked read, so an
    // observe() racing with export cannot skew count against buckets.
    const Histogram::Snapshot snap = h.snapshot();
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      if (i > 0) out += ",";
      const std::string le =
          i < snap.bounds.size() ? json_number(snap.bounds[i]) : "\"+inf\"";
      out += "{\"le\":" + le +
             ",\"count\":" + std::to_string(snap.counts[i]) + "}";
    }
    out += "],\"count\":" + std::to_string(snap.count) +
           ",\"sum\":" + json_number(snap.sum) + "}";
  }
  out += "}";
  // Emitted only when present so registries without summaries keep the
  // historical three-section shape exporters (and the golden test) expect.
  if (!summaries_.empty()) {
    out += ",\"summaries\":{";
    first = true;
    for (const auto& [key, s] : summaries_) {
      if (!first) out += ",";
      first = false;
      const Summary::Snapshot snap = s.snapshot();
      out += "\"" + json_escape(key) +
             "\":{\"count\":" + std::to_string(snap.count) +
             ",\"sum\":" + json_number(snap.sum) +
             ",\"min\":" + json_number(snap.min) +
             ",\"max\":" + json_number(snap.max) +
             ",\"p50\":" + json_number(snap.p50) +
             ",\"p90\":" + json_number(snap.p90) +
             ",\"p99\":" + json_number(snap.p99) +
             ",\"p999\":" + json_number(snap.p999) + "}";
    }
    out += "}";
  }
  out += "}";
  return out;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Stage 1: copy the source's values under its lock only. The staged
  // copies decouple the two registry locks — this function never holds
  // both, so concurrent cross-merges cannot deadlock.
  std::vector<std::pair<std::string, std::uint64_t>> counter_vals;
  std::vector<std::pair<std::string, double>> gauge_vals;
  std::vector<std::string> histogram_keys;
  std::vector<std::string> summary_keys;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    counter_vals.reserve(other.counters_.size());
    for (const auto& [key, c] : other.counters_) {
      counter_vals.emplace_back(key, c.value());
    }
    gauge_vals.reserve(other.gauges_.size());
    for (const auto& [key, g] : other.gauges_) {
      gauge_vals.emplace_back(key, g.value());
    }
    histogram_keys.reserve(other.histograms_.size());
    for (const auto& [key, h] : other.histograms_) histogram_keys.push_back(key);
    summary_keys.reserve(other.summaries_.size());
    for (const auto& [key, s] : other.summaries_) summary_keys.push_back(key);
  }

  // Stage 2: fold into this registry. Counter/Gauge updates are atomic;
  // histogram folds go through Histogram::merge_from, whose target-side
  // read-modify-write runs under the target histogram's mutex — so any
  // number of sessions ending at once merge without losing updates.
  for (const auto& [key, value] : counter_vals) {
    if (value == 0) continue;
    std::lock_guard<std::mutex> lock(mu_);
    counters_[key].inc(value);
  }
  for (const auto& [key, value] : gauge_vals) {
    std::lock_guard<std::mutex> lock(mu_);
    gauges_[key].add(value);
  }
  for (const auto& key : histogram_keys) {
    // Re-find under the source lock (map *structure* needs it), then drop
    // it — the node reference stays valid forever, and merge_from locks
    // the histogram's own mutex for the actual read.
    const Histogram* src = nullptr;
    {
      std::lock_guard<std::mutex> lock(other.mu_);
      src = &other.histograms_.at(key);
    }
    Histogram* dst = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = histograms_.find(key);
      if (it != histograms_.end()) {
        dst = &it->second;
      } else {
        dst = &histograms_.try_emplace(key, src->bounds()).first->second;
      }
    }
    dst->merge_from(*src);
  }
  for (const auto& key : summary_keys) {
    // Same discipline as histograms: node references are stable, and
    // Summary::merge_from handles the value-level locking itself.
    const Summary* src = nullptr;
    {
      std::lock_guard<std::mutex> lock(other.mu_);
      src = &other.summaries_.at(key);
    }
    Summary* dst = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      dst = &summaries_[key];
    }
    dst->merge_from(*src);
  }
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  summaries_.clear();
}

namespace {
thread_local MetricsRegistry* thread_metrics = nullptr;
}  // namespace

MetricsRegistry* set_thread_metrics(MetricsRegistry* m) {
  MetricsRegistry* prev = thread_metrics;
  thread_metrics = m;
  return prev;
}

MetricsRegistry& metrics() {
  if (thread_metrics != nullptr) return *thread_metrics;
  static MetricsRegistry registry;
  return registry;
}

}  // namespace revelio::obs

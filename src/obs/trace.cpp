#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/sim_clock.hpp"
#include "obs/json.hpp"

namespace revelio::obs {

namespace {

std::uint64_t virt_now_us() {
  const SimClock* clock = SimClock::current();
  return clock == nullptr ? 0 : clock->now_us();
}

std::string attrs_json(const SpanRecord& span) {
  std::string out = "{";
  for (std::size_t i = 0; i < span.attrs.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(span.attrs[i].first) + "\":\"" +
           json_escape(span.attrs[i].second) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string SpanRecord::attr(const std::string& key) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return v;
  }
  return {};
}

std::uint64_t Tracer::real_now_ns() const {
  if (real_clock_) return real_clock_();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Tracer::set_max_finished(std::size_t cap) {
  max_finished_ = cap;
  while (finished_.size() > max_finished_) {
    finished_.pop_front();
    ++dropped_;
  }
}

void Tracer::set_real_clock(std::function<std::uint64_t()> now_ns) {
  real_clock_ = std::move(now_ns);
}

void Tracer::clear() {
  finished_.clear();
  dropped_ = 0;
  next_id_ = open_.empty() ? 1 : next_id_;
}

std::uint64_t Tracer::begin_span(std::string name) {
  SpanRecord record;
  record.id = next_id_++;
  record.parent_id = open_.empty() ? 0 : open_.back().id;
  record.name = std::move(name);
  record.virt_start_us = virt_now_us();
  record.real_start_ns = real_now_ns();
  record.lane = common::current_lane();
  if (log_spans_) {
    log_debug("obs", "span#" + std::to_string(record.id) + " begin " +
                         record.name +
                         (record.parent_id != 0
                              ? " parent=#" + std::to_string(record.parent_id)
                              : ""));
  }
  open_.push_back(std::move(record));
  return open_.back().id;
}

void Tracer::annotate(std::uint64_t id, std::string key, std::string value) {
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (it->id == id) {
      it->attrs.emplace_back(std::move(key), std::move(value));
      return;
    }
  }
}

void Tracer::end_span(std::uint64_t id) {
  // Usually the top of the stack; search from the back to stay correct if
  // a caller ends an outer span while an inner one is still open.
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (it->id != id) continue;
    SpanRecord record = std::move(*it);
    open_.erase(std::next(it).base());
    record.virt_end_us = virt_now_us();
    record.real_end_ns = real_now_ns();
    if (log_spans_) {
      log_debug("obs",
                "span#" + std::to_string(record.id) + " end " + record.name +
                    " virt_us=" + std::to_string(record.virt_us()) +
                    " real_us=" + json_number(record.real_us()));
    }
    finished_.push_back(std::move(record));
    if (finished_.size() > max_finished_) {
      finished_.pop_front();
      ++dropped_;
    }
    return;
  }
}

std::string Tracer::finished_spans_json() const {
  std::string out = "[";
  bool first = true;
  for (const auto& span : finished_) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":" + std::to_string(span.id) +
           ",\"parent_id\":" + std::to_string(span.parent_id) + ",\"name\":\"" +
           json_escape(span.name) + "\"" +
           ",\"virt_start_us\":" + std::to_string(span.virt_start_us) +
           ",\"virt_us\":" + std::to_string(span.virt_us()) +
           ",\"real_us\":" + json_number(span.real_us()) +
           ",\"lane\":" + std::to_string(span.lane) +
           ",\"attrs\":" + attrs_json(span) + "}";
  }
  out += "]";
  return out;
}

std::string Tracer::chrome_trace_json() const {
  // Rebase real timestamps so the trace starts near zero.
  std::uint64_t real_base = UINT64_MAX;
  for (const auto& span : finished_) {
    real_base = std::min(real_base, span.real_start_ns);
  }
  if (real_base == UINT64_MAX) real_base = 0;

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out +=
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"virtual clock (sim)\"}},";
  out +=
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
      "\"args\":{\"name\":\"real clock (cpu)\"}}";
  // One extra real-clock row per pool lane that begun spans, so staged
  // batches fanned out over the pool render as parallel lanes.
  std::vector<std::uint32_t> lanes;
  for (const auto& span : finished_) {
    if (span.lane != 0) lanes.push_back(span.lane);
  }
  std::sort(lanes.begin(), lanes.end());
  lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());
  for (const std::uint32_t lane : lanes) {
    out += ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(100 + lane) + ",\"args\":{\"name\":\"real clock (pool lane " +
           std::to_string(lane) + ")\"}}";
  }
  for (const auto& span : finished_) {
    std::string args = "{\"span_id\":" + std::to_string(span.id) +
                       ",\"parent_id\":" + std::to_string(span.parent_id);
    for (const auto& [key, value] : span.attrs) {
      args += ",\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
    }
    args += "}";
    const std::uint32_t real_tid = span.lane == 0 ? 2 : 100 + span.lane;
    out += ",{\"name\":\"" + json_escape(span.name) +
           "\",\"cat\":\"virt\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":" +
           std::to_string(span.virt_start_us) +
           ",\"dur\":" + std::to_string(span.virt_us()) + ",\"args\":" + args +
           "}";
    out += ",{\"name\":\"" + json_escape(span.name) +
           "\",\"cat\":\"real\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(real_tid) + ",\"ts\":" +
           json_number(
               static_cast<double>(span.real_start_ns - real_base) / 1000.0) +
           ",\"dur\":" + json_number(span.real_us()) + ",\"args\":" + args +
           "}";
  }
  out += "]}";
  return out;
}

namespace {
thread_local Tracer* thread_tracer = nullptr;
}  // namespace

Tracer* set_thread_tracer(Tracer* t) {
  Tracer* prev = thread_tracer;
  thread_tracer = t;
  return prev;
}

Tracer& tracer() {
  if (thread_tracer != nullptr) return *thread_tracer;
  static Tracer t;
  return t;
}

Span::Span(std::string name) {
  Tracer& t = tracer();
  if (!t.enabled()) return;
  id_ = t.begin_span(std::move(name));
}

void Span::attr(const std::string& key, std::string value) {
  if (id_ != 0) tracer().annotate(id_, key, std::move(value));
}
void Span::attr(const std::string& key, const char* value) {
  attr(key, std::string(value));
}
void Span::attr(const std::string& key, std::uint64_t value) {
  attr(key, std::to_string(value));
}
void Span::attr(const std::string& key, bool value) {
  attr(key, std::string(value ? "true" : "false"));
}

void Span::end() {
  if (id_ == 0) return;
  tracer().end_span(id_);
  id_ = 0;
}

}  // namespace revelio::obs

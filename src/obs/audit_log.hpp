// Tamper-evident attestation audit chain.
//
// The paper's trust story is that *end users* can check what the gateway
// did on their behalf; SNPGuard (PAPERS.md) argues an attestation workflow
// must leave an independently checkable evidence trail. This log is that
// trail: every session verdict — accepted or rejected — is appended as a
// fixed-size binary record (measurement, VCEK chain digest, TCB, checks
// bitmap, failure step, evidence digest) to a hash chain
//
//   h_0 = SHA-256("revelio-audit-v1")
//   h_i = SHA-256(h_{i-1} || 0x01 || record_i)
//
// with a Merkle checkpoint every `interval` records (the root over the
// epoch's record hashes, itself folded into the chain), so an auditor can
// verify a whole epoch against one 32-byte root without replaying every
// record, while the chain makes any insertion, deletion, reorder, or
// single flipped bit change every later h_i and the final head.
//
// serialize() emits a self-contained byte stream (magic + parameters +
// frames + head trailer) that tools/audit_verify — a standalone binary
// with no gateway state — replays offline with verify(). The gateway
// cannot rewrite history it has already exported: any divergence between
// a published head and a re-verified stream is proof of tampering.
//
// Persistence (PR 9): set_sink() registers an append-through hook that
// receives every frame as it is chained — the durable tier
// (obs/audit_store.hpp) writes them to the KV store — and restore()
// rebuilds a log from a serialized stream, re-verifying the entire chain
// before accepting a single record, so a gateway can never resume on top
// of a history it cannot prove. verify_prefix() distinguishes a cleanly
// truncated tail (a crash mid-append) from interior tampering and reports
// how far the valid prefix extends.
//
// Thread-safety: append() serializes on an internal mutex (many sessions
// reach their verdict concurrently); serialize()/head() take the same
// mutex and may interleave with appends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/sha2.hpp"

namespace revelio::obs {

/// One session verdict. Fixed-size on the wire (kWireSize bytes) so the
/// stream is seekable and a flipped byte cannot shift frame boundaries.
struct AuditRecord {
  /// Bits of `checks`, mirroring core::AttestationChecks field order.
  enum Check : std::uint8_t {
    kEvidenceFetched = 1 << 0,
    kBindingOk = 1 << 1,      // REPORT_DATA covers the served key
    kChainOk = 1 << 2,        // VCEK chains to the AMD root
    kSignatureOk = 1 << 3,    // report signed by that VCEK
    kMeasurementOk = 1 << 4,  // measurement in the accepted set
    kTlsBindingOk = 1 << 5,   // session terminates at the attested key
  };

  std::uint64_t session = 0;
  std::uint64_t virt_us = 0;  // virtual clock at the verdict
  bool accepted = false;
  std::uint8_t checks = 0;  // bitmap of Check
  /// First check that failed ("" when accepted); truncated to 15 bytes on
  /// the wire (NUL-padded fixed field).
  std::string failure_step;
  crypto::Digest48 measurement{};    // zero when evidence never arrived
  crypto::Digest32 vcek_chain{};     // SHA-256 over vcek||ask||ark DER
  std::uint64_t tcb = 0;             // reported TCB, TcbVersion::encode()
  crypto::Digest32 evidence_digest{};  // SHA-256 over the evidence bundle

  static constexpr std::size_t kFailureStepSize = 16;  // 15 chars + NUL pad
  static constexpr std::size_t kWireSize =
      8 + 8 + 1 + 1 + kFailureStepSize + 48 + 32 + 8 + 32;

  Bytes serialize() const;
  /// Bounds-checked deserialization: `wire` must be exactly kWireSize
  /// bytes. Short input fails with "audit.record_truncated", long input
  /// with "audit.record_oversized" — never silent acceptance or an
  /// out-of-bounds read.
  static Result<AuditRecord> parse(ByteView wire);
};

class AuditLog {
 public:
  /// `checkpoint_interval` records per Merkle epoch (clamped to >= 1).
  explicit AuditLog(std::size_t checkpoint_interval = 64);

  /// Appends one verdict: extends the hash chain, and when the current
  /// epoch reaches the checkpoint interval, folds the epoch's Merkle root
  /// in as a checkpoint frame. Thread-safe.
  void append(const AuditRecord& record);

  std::uint64_t records() const;
  std::uint64_t checkpoints() const;
  /// Current chain head. Publish it out of band (a transparency log, a
  /// signed statement) to bind the gateway to this history.
  crypto::Digest32 head() const;

  /// Self-contained stream: magic, parameters, every frame appended so
  /// far, and a trailer carrying the current head. verify() replays it.
  Bytes serialize() const;

  /// Append-through persistence hook: called under the log mutex with
  /// every frame (record and checkpoint) as it is folded into the chain,
  /// in chain order. A failing sink never blocks the in-memory chain —
  /// failures are counted and surfaced via sink_failures() so operators
  /// can alarm on a durability gap instead of silently losing history.
  using FrameSink = std::function<Status(std::uint8_t frame_type, ByteView body)>;
  void set_sink(FrameSink sink);
  std::uint64_t sink_failures() const;
  std::string last_sink_error() const;

  struct VerifySummary {
    std::uint64_t records = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::string head_hex;  // recomputed chain head
  };

  /// Replays a serialized stream with no state beyond the bytes given:
  /// recomputes the chain and every checkpoint root, and compares the
  /// trailer head. Any flipped byte, truncation, insertion or reorder
  /// yields an "audit.tamper" error naming the offending frame (a stream
  /// that simply ends without a trailer yields "audit.truncated").
  static Result<VerifySummary> verify(ByteView stream);

  /// How far a possibly-damaged stream verifies. Distinguishes a *clean
  /// truncation* — the stream stops mid-frame or before the trailer,
  /// exactly what a crash mid-append produces — from interior tampering
  /// (valid-looking bytes that fail the chain). Header damage (bad magic
  /// or parameters) still fails the call outright.
  struct PrefixSummary {
    VerifySummary summary;      // over the longest verifiable prefix
    bool complete = false;      // trailer present and head matches
    bool truncated = false;     // stopped at a clean truncation
    std::uint64_t valid_frames = 0;
    std::uint64_t last_valid_record = 0;  // 1-based; 0 = none survived
    std::string failure_code;   // audit.record_truncated /
                                // audit.checkpoint_truncated /
                                // audit.trailer_truncated /
                                // audit.truncated / audit.tamper
    std::string failure_detail;
  };
  static Result<PrefixSummary> verify_prefix(ByteView stream);

  /// One chaining step, h' = SHA-256(h || frame_type || body) — exposed so
  /// the durable tier can maintain the running head it persists alongside
  /// each frame.
  static crypto::Digest32 chain_step(const crypto::Digest32& head,
                                     std::uint8_t frame_type, ByteView body);

  /// Assembles a serialized stream from its parts (header parameters, the
  /// concatenated frames exactly as appended, and the trailer head). The
  /// result is what serialize() would have produced — verify()/restore()
  /// accept it. Used by the durable tier to rebuild a stream from
  /// individually persisted frames.
  static Bytes assemble_stream(std::size_t checkpoint_interval,
                               ByteView frames, const crypto::Digest32& head);

  /// Rebuilds this (empty) log from a serialized stream, re-verifying the
  /// entire chain first: a stream that fails verification — including a
  /// truncated tail — restores nothing. The stream's checkpoint interval
  /// must match this log's. Fail-closed by construction: after a
  /// successful restore the log's head equals the stream's trailer head
  /// and appends continue the chain seamlessly.
  Status restore(ByteView stream);

 private:
  void append_checkpoint_locked();
  void emit_locked(std::uint8_t frame_type, ByteView body);

  const std::size_t interval_;
  mutable std::mutex mu_;
  crypto::Digest32 head_;
  Bytes frames_;  // every frame appended so far, in order
  std::vector<crypto::Digest32> epoch_leaves_;  // record hashes this epoch
  std::uint64_t records_ = 0;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t accepted_ = 0;
  FrameSink sink_;
  std::uint64_t sink_failures_ = 0;
  std::string last_sink_error_;
};

}  // namespace revelio::obs

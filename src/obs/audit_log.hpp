// Tamper-evident attestation audit chain.
//
// The paper's trust story is that *end users* can check what the gateway
// did on their behalf; SNPGuard (PAPERS.md) argues an attestation workflow
// must leave an independently checkable evidence trail. This log is that
// trail: every session verdict — accepted or rejected — is appended as a
// fixed-size binary record (measurement, VCEK chain digest, TCB, checks
// bitmap, failure step, evidence digest) to a hash chain
//
//   h_0 = SHA-256("revelio-audit-v1")
//   h_i = SHA-256(h_{i-1} || 0x01 || record_i)
//
// with a Merkle checkpoint every `interval` records (the root over the
// epoch's record hashes, itself folded into the chain), so an auditor can
// verify a whole epoch against one 32-byte root without replaying every
// record, while the chain makes any insertion, deletion, reorder, or
// single flipped bit change every later h_i and the final head.
//
// serialize() emits a self-contained byte stream (magic + parameters +
// frames + head trailer) that tools/audit_verify — a standalone binary
// with no gateway state — replays offline with verify(). The gateway
// cannot rewrite history it has already exported: any divergence between
// a published head and a re-verified stream is proof of tampering.
//
// Thread-safety: append() serializes on an internal mutex (many sessions
// reach their verdict concurrently); serialize()/head() take the same
// mutex and may interleave with appends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/sha2.hpp"

namespace revelio::obs {

/// One session verdict. Fixed-size on the wire (kWireSize bytes) so the
/// stream is seekable and a flipped byte cannot shift frame boundaries.
struct AuditRecord {
  /// Bits of `checks`, mirroring core::AttestationChecks field order.
  enum Check : std::uint8_t {
    kEvidenceFetched = 1 << 0,
    kBindingOk = 1 << 1,      // REPORT_DATA covers the served key
    kChainOk = 1 << 2,        // VCEK chains to the AMD root
    kSignatureOk = 1 << 3,    // report signed by that VCEK
    kMeasurementOk = 1 << 4,  // measurement in the accepted set
    kTlsBindingOk = 1 << 5,   // session terminates at the attested key
  };

  std::uint64_t session = 0;
  std::uint64_t virt_us = 0;  // virtual clock at the verdict
  bool accepted = false;
  std::uint8_t checks = 0;  // bitmap of Check
  /// First check that failed ("" when accepted); truncated to 15 bytes on
  /// the wire (NUL-padded fixed field).
  std::string failure_step;
  crypto::Digest48 measurement{};    // zero when evidence never arrived
  crypto::Digest32 vcek_chain{};     // SHA-256 over vcek||ask||ark DER
  std::uint64_t tcb = 0;             // reported TCB, TcbVersion::encode()
  crypto::Digest32 evidence_digest{};  // SHA-256 over the evidence bundle

  static constexpr std::size_t kFailureStepSize = 16;  // 15 chars + NUL pad
  static constexpr std::size_t kWireSize =
      8 + 8 + 1 + 1 + kFailureStepSize + 48 + 32 + 8 + 32;

  Bytes serialize() const;
  static AuditRecord parse(ByteView wire);  // wire.size() == kWireSize
};

class AuditLog {
 public:
  /// `checkpoint_interval` records per Merkle epoch (clamped to >= 1).
  explicit AuditLog(std::size_t checkpoint_interval = 64);

  /// Appends one verdict: extends the hash chain, and when the current
  /// epoch reaches the checkpoint interval, folds the epoch's Merkle root
  /// in as a checkpoint frame. Thread-safe.
  void append(const AuditRecord& record);

  std::uint64_t records() const;
  std::uint64_t checkpoints() const;
  /// Current chain head. Publish it out of band (a transparency log, a
  /// signed statement) to bind the gateway to this history.
  crypto::Digest32 head() const;

  /// Self-contained stream: magic, parameters, every frame appended so
  /// far, and a trailer carrying the current head. verify() replays it.
  Bytes serialize() const;

  struct VerifySummary {
    std::uint64_t records = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::string head_hex;  // recomputed chain head
  };

  /// Replays a serialized stream with no state beyond the bytes given:
  /// recomputes the chain and every checkpoint root, and compares the
  /// trailer head. Any flipped byte, truncation, insertion or reorder
  /// yields an "audit.tamper" error naming the offending frame.
  static Result<VerifySummary> verify(ByteView stream);

 private:
  void append_checkpoint_locked();

  const std::size_t interval_;
  mutable std::mutex mu_;
  crypto::Digest32 head_;
  Bytes frames_;  // every frame appended so far, in order
  std::vector<crypto::Digest32> epoch_leaves_;  // record hashes this epoch
  std::uint64_t records_ = 0;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t accepted_ = 0;
};

}  // namespace revelio::obs

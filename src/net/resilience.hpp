// Resilience policies for the simulated network fabric.
//
// The chaos layer (net::FaultPlan) makes transport faults routine; this
// module gives clients a principled response: capped exponential backoff
// with DRBG jitter charged to the SimClock (RetryPolicy / with_retries),
// virtual-time Deadline budgets threaded through nested calls, a
// per-endpoint CircuitBreaker (closed → open → half-open), and Failover
// over ordered replica lists. The cardinal rule, enforced through
// Error::is_transient(): only transport losses are retried — a
// verification failure is a fail-closed verdict and is returned
// immediately, no matter how many replicas or attempts remain.
//
// Thread safety: NONE of these types synchronize internally. They are
// per-client state, owned by whatever owns the client (a WebExtension,
// an SpNode, a BnFleetClient) and driven by one thread at a time — under
// the concurrent gateway (revelio/session_engine.hpp) each session builds
// its own extension, so each gets private breakers, retry state and
// jitter DRBG, and the world mutex serializes everything that touches a
// given SimClock or Network. Sharing a CircuitBreaker, Failover, Deadline
// or jitter DRBG across concurrently-running sessions without external
// locking is a data race.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/event_loop.hpp"
#include "common/result.hpp"
#include "common/sim_clock.hpp"
#include "crypto/drbg.hpp"
#include "net/network.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace revelio::net {

/// Virtual-time budget for an operation, threaded by value through nested
/// calls. Default-constructed deadlines are unlimited.
///
/// Thread safety: immutable after construction, so copies may be read
/// from any thread; the SimClock passed to the query methods must be the
/// thread's own (world-locked) clock.
class Deadline {
 public:
  Deadline() = default;

  static Deadline unlimited() { return Deadline{}; }
  /// Expires `budget_ms` of virtual time from now.
  static Deadline after_ms(const SimClock& clock, double budget_ms) {
    Deadline d;
    d.expires_us_ =
        clock.now_us() + static_cast<SimClock::Micros>(budget_ms * 1000.0);
    return d;
  }

  bool is_unlimited() const { return expires_us_ == kNoExpiry; }
  bool expired(const SimClock& clock) const {
    return clock.now_us() >= expires_us_;
  }
  double remaining_ms(const SimClock& clock) const {
    if (is_unlimited()) return std::numeric_limits<double>::infinity();
    if (clock.now_us() >= expires_us_) return 0.0;
    return static_cast<double>(expires_us_ - clock.now_us()) / 1000.0;
  }
  /// A child budget: at most `budget_ms` from now, never later than this
  /// deadline — how a sub-call inherits the caller's remaining time.
  Deadline capped_ms(const SimClock& clock, double budget_ms) const {
    Deadline child = after_ms(clock, budget_ms);
    if (child.expires_us_ > expires_us_) child.expires_us_ = expires_us_;
    return child;
  }

 private:
  static constexpr SimClock::Micros kNoExpiry =
      std::numeric_limits<SimClock::Micros>::max();
  SimClock::Micros expires_us_ = kNoExpiry;
};

/// Capped exponential backoff with jitter. All sleeps are virtual.
struct RetryPolicy {
  std::uint32_t max_attempts = 4;
  double initial_backoff_ms = 50.0;
  double multiplier = 2.0;
  double max_backoff_ms = 1600.0;
  /// Backoff is scaled by a factor drawn uniformly from
  /// [1 - jitter, 1 + jitter]; jitter comes from a caller-owned DRBG so
  /// schedules stay seed-deterministic.
  double jitter = 0.25;

  /// Backoff before retry number `attempt` (1 = after the first failure).
  double backoff_ms(std::uint32_t attempt, crypto::HmacDrbg& jitter_drbg) const;
};

/// Per-endpoint circuit breaker over virtual time.
///
/// closed: requests flow; `failure_threshold` consecutive transient
///   failures open the breaker.  open: requests are short-circuited
///   without touching the endpoint until `open_ms` of virtual time has
///   passed.  half-open: one probe is let through; `half_open_successes`
///   consecutive probe successes close the breaker, any failure re-opens
///   it. State is exported as the gauge `breaker.state{endpoint=...}`
///   (0 closed, 1 open, 2 half-open).
///
/// Thread safety: not synchronized. allow/on_success/on_failure mutate
/// state and must come from one thread at a time (in practice: the
/// session that owns the enclosing Failover, under its world's mutex).
class CircuitBreaker {
 public:
  struct Config {
    std::uint32_t failure_threshold = 3;
    double open_ms = 5000.0;
    std::uint32_t half_open_successes = 1;
  };
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(std::string endpoint);
  CircuitBreaker(std::string endpoint, Config config);

  /// Current state, accounting for open→half-open cooldown expiry.
  State state(const SimClock& clock) const;
  /// True if a request may proceed now. An open breaker whose cooldown has
  /// elapsed transitions to half-open and admits the probe.
  bool allow(const SimClock& clock);
  void on_success(const SimClock& clock);
  void on_failure(const SimClock& clock);

  const std::string& endpoint() const { return endpoint_; }
  std::uint64_t times_opened() const { return times_opened_; }

 private:
  void transition(State next);

  std::string endpoint_;
  Config config_;
  State state_ = State::kClosed;
  std::uint32_t consecutive_failures_ = 0;
  std::uint32_t half_open_successes_ = 0;
  SimClock::Micros opened_at_us_ = 0;
  std::uint64_t times_opened_ = 0;
};

/// Ordered replica list with one circuit breaker per replica.
///
/// execute() tries replicas in order, skipping those whose breaker is
/// open. Transient failures record against the replica's breaker and fall
/// through to the next; a permanent error (a fail-closed verdict) is
/// returned immediately without consulting further replicas.
///
/// Thread safety: not synchronized — execute() mutates breaker state and
/// may insert into the breaker map. One owner thread at a time; metric
/// emission inside execute() is safe regardless (the registry is
/// thread-resolved and internally synchronized).
class Failover {
 public:
  explicit Failover(std::vector<Address> replicas,
                    CircuitBreaker::Config breaker_config = {},
                    std::string service = "net");

  const std::vector<Address>& replicas() const { return replicas_; }
  CircuitBreaker& breaker(const Address& replica);

  template <typename Fn>
  auto execute(SimClock& clock, Fn&& fn)
      -> decltype(fn(std::declval<const Address&>())) {
    using R = decltype(fn(std::declval<const Address&>()));
    obs::Span span("net.failover");
    span.attr("service", service_);
    R last = Error::make("net.unreachable",
                         service_ + ": all replicas short-circuited");
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      CircuitBreaker& br = breaker(replicas_[i]);
      if (!br.allow(clock)) {
        obs::metrics()
            .counter("breaker.short_circuit.count",
                     {{"endpoint", replicas_[i].to_string()}})
            .inc();
        continue;
      }
      R result = fn(replicas_[i]);
      if (result.ok()) {
        br.on_success(clock);
        if (i > 0) {
          obs::metrics()
              .counter("failover.switch.count", {{"service", service_}})
              .inc();
        }
        span.attr("replica", replicas_[i].to_string());
        return result;
      }
      if (!result.error().is_transient()) {
        // Fail closed: verification failures never fail over.
        return result;
      }
      br.on_failure(clock);
      last = std::move(result);
    }
    span.attr("exhausted", true);
    return last;
  }

 private:
  std::string service_;
  std::vector<Address> replicas_;
  CircuitBreaker::Config breaker_config_;
  std::map<std::string, CircuitBreaker> breakers_;
};

/// Runs `fn` under `policy`, retrying only transient errors, charging each
/// backoff to the SimClock and never sleeping past `deadline`. `op` labels
/// the `retry.attempts{op=...}` counter. Returns the first permanent error,
/// the first success, or the last transient error when attempts (or the
/// deadline) run out; an already-expired deadline yields
/// `net.deadline_exceeded` (permanent by design: budget exhaustion must not
/// be retried by an outer layer).
///
/// Thread safety: re-entrant but not synchronized — `clock` and
/// `jitter_drbg` are mutated (backoff advances the clock, jitter draws
/// consume DRBG state), so concurrent callers must pass thread-private or
/// externally-locked instances.
template <typename Fn>
auto with_retries(SimClock& clock, crypto::HmacDrbg& jitter_drbg,
                  const RetryPolicy& policy, const Deadline& deadline,
                  const std::string& op, Fn&& fn) -> decltype(fn()) {
  using R = decltype(fn());
  // The span is opened lazily on the first retry so the fault-free fast
  // path leaves the documented span tree untouched (and costs nothing).
  std::optional<obs::Span> span;
  std::uint32_t attempt = 1;
  for (;;) {
    if (deadline.expired(clock)) {
      if (span) span->attr("deadline_exceeded", true);
      return R(Error::make("net.deadline_exceeded", op));
    }
    obs::metrics().counter("retry.attempts", {{"op", op}}).inc();
    R result = fn();
    if (result.ok() || !result.error().is_transient() ||
        attempt >= policy.max_attempts) {
      if (span) span->attr("attempts", static_cast<std::uint64_t>(attempt));
      return result;
    }
    if (!span) {
      span.emplace("net.retry");
      span->attr("op", op);
    }
    double backoff = policy.backoff_ms(attempt, jitter_drbg);
    const double remaining = deadline.remaining_ms(clock);
    if (backoff > remaining) backoff = remaining;
    if (backoff > 0.0) {
      // A backoff sleep is pure waiting: charge virtual time and report it
      // to the event layer so a staged engine parks instead of blocking.
      clock.advance_ms(backoff);
      common::note_virtual_wait_ms(backoff);
    }
    obs::flight_record(obs::FlightEventType::kRetry,
                       static_cast<std::uint16_t>(attempt),
                       static_cast<std::uint32_t>(backoff * 1000.0));
    obs::metrics().counter("retry.backoff.count", {{"op", op}}).inc();
    ++attempt;
  }
}

}  // namespace revelio::net

#include "net/network.hpp"

#include <algorithm>

namespace revelio::net {

void Network::listen(const Address& addr, Handler handler) {
  handlers_[addr] = std::move(handler);
}

void Network::close(const Address& addr) { handlers_.erase(addr); }

bool Network::is_listening(const Address& addr) const {
  return handlers_.count(addr) > 0;
}

void Network::set_link_latency_ms(const std::string& a, const std::string& b,
                                  double ms) {
  link_latency_ms_[{std::min(a, b), std::max(a, b)}] = ms;
}

double Network::latency_between(const std::string& a,
                                const std::string& b) const {
  if (a == b) return 0.05;  // loopback
  const auto it = link_latency_ms_.find({std::min(a, b), std::max(a, b)});
  return it == link_latency_ms_.end() ? default_latency_ms_ : it->second;
}

Result<Bytes> Network::call(const Address& from, const Address& to,
                            ByteView request) {
  Address target = to;
  Bytes tampered;
  ByteView payload = request;

  if (interceptor_) {
    MitmAction action = interceptor_(from, to, request);
    switch (action.kind) {
      case MitmAction::Kind::kForward:
        break;
      case MitmAction::Kind::kDrop:
        // The caller observes a timeout; charge it.
        clock_->advance_ms(1000.0);
        return Error::make("net.timeout", "request dropped in transit");
      case MitmAction::Kind::kTamper:
        tampered = std::move(action.tampered_request);
        payload = tampered;
        break;
      case MitmAction::Kind::kRedirect:
        target = action.redirect_to;
        break;
    }
  }

  const auto it = handlers_.find(target);
  if (it == handlers_.end()) {
    clock_->advance_ms(latency_between(from.host, target.host));
    return Error::make("net.connection_refused", target.to_string());
  }
  // One round trip.
  clock_->advance_ms(2.0 * latency_between(from.host, target.host));
  ++messages_delivered_;
  return it->second(payload, from);
}

void Network::dns_set_a(const std::string& name, const std::string& host) {
  dns_a_[name] = host;
}

void Network::dns_remove_a(const std::string& name) { dns_a_.erase(name); }

void Network::dns_set_txt(const std::string& name, const std::string& value) {
  dns_txt_[name].push_back(value);
}

void Network::dns_clear_txt(const std::string& name) {
  dns_txt_.erase(name);
}

std::vector<std::string> Network::dns_txt(const std::string& name) const {
  const auto it = dns_txt_.find(name);
  return it == dns_txt_.end() ? std::vector<std::string>{} : it->second;
}

Result<Address> Network::resolve(const std::string& name,
                                 std::uint16_t port) const {
  const auto it = dns_a_.find(name);
  if (it == dns_a_.end()) {
    return Error::make("net.nxdomain", name);
  }
  return Address{it->second, port};
}

}  // namespace revelio::net

#include "net/network.hpp"

#include <algorithm>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/event_loop.hpp"
#include "obs/metrics.hpp"

namespace revelio::net {

namespace {
/// Transport time is a *wait* from the caller's point of view: charge it
/// to the world clock and report it to the event layer's wait observer
/// (common/event_loop.hpp), so a staged session engine can park sessions
/// for exactly this long instead of blocking a thread.
void charge_wait_ms(SimClock& clock, double ms) {
  clock.advance_ms(ms);
  common::note_virtual_wait_ms(ms);
}
}  // namespace

// --- FaultPlan -----------------------------------------------------------

FaultPlan::FaultPlan(ByteView seed)
    : drbg_(seed, to_bytes("net-fault-plan")) {}

void FaultPlan::set_default_profile(const LinkFaultProfile& profile) {
  default_profile_ = profile;
}

void FaultPlan::set_link_profile(const std::string& a, const std::string& b,
                                 const LinkFaultProfile& profile) {
  link_profiles_[key(a, b)] = profile;
}

void FaultPlan::partition(const std::string& a, const std::string& b) {
  partitions_.insert(key(a, b));
}

void FaultPlan::heal(const std::string& a, const std::string& b) {
  partitions_.erase(key(a, b));
}

void FaultPlan::blackhole(const std::string& host, SimClock::Micros start_us,
                          SimClock::Micros end_us) {
  blackholes_[host].push_back(Window{start_us, end_us});
}

void FaultPlan::flap(const std::string& host, SimClock::Micros period_us,
                     SimClock::Micros down_us, SimClock::Micros phase_us) {
  if (period_us == 0) return;
  flaps_[host].push_back(Flap{period_us, down_us, phase_us});
}

void FaultPlan::clear_faults() {
  default_profile_ = LinkFaultProfile{};
  link_profiles_.clear();
  partitions_.clear();
  blackholes_.clear();
  flaps_.clear();
}

FaultPlan::HostPair FaultPlan::key(const std::string& a,
                                   const std::string& b) {
  return {std::min(a, b), std::max(a, b)};
}

const LinkFaultProfile& FaultPlan::profile_for(const std::string& a,
                                               const std::string& b) const {
  const auto it = link_profiles_.find(key(a, b));
  return it == link_profiles_.end() ? default_profile_ : it->second;
}

bool FaultPlan::endpoint_down(const std::string& host,
                              SimClock::Micros now_us,
                              const char** kind) const {
  const auto bh = blackholes_.find(host);
  if (bh != blackholes_.end()) {
    for (const Window& w : bh->second) {
      if (now_us >= w.start_us && now_us < w.end_us) {
        *kind = "blackhole";
        return true;
      }
    }
  }
  const auto fl = flaps_.find(host);
  if (fl != flaps_.end()) {
    for (const Flap& f : fl->second) {
      const SimClock::Micros since =
          now_us >= f.phase_us ? now_us - f.phase_us : 0;
      if (now_us >= f.phase_us && since % f.period_us < f.down_us) {
        *kind = "flap";
        return true;
      }
    }
  }
  return false;
}

double FaultPlan::uniform() {
  const Bytes raw = drbg_.generate(8);
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x = (x << 8) | raw[static_cast<size_t>(i)];
  // 53 bits of mantissa, exactly as uniform as a double can be.
  return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
}

FaultPlan::Decision FaultPlan::decide(const std::string& from,
                                      const std::string& to,
                                      SimClock::Micros now_us) {
  Decision d;
  // Structural faults are deterministic functions of config + clock and
  // consume no DRBG state, so healing a partition never shifts the
  // probabilistic schedule of other links.
  if (partitions_.count(key(from, to)) > 0) {
    d.verdict = Decision::Verdict::kUnreachable;
    d.kind = "partition";
    return d;
  }
  const char* down_kind = "";
  if (endpoint_down(to, now_us, &down_kind) ||
      endpoint_down(from, now_us, &down_kind)) {
    d.verdict = Decision::Verdict::kUnreachable;
    d.kind = down_kind;
    return d;
  }

  const LinkFaultProfile& p = profile_for(from, to);
  if (p.drop_prob > 0.0 && uniform() < p.drop_prob) {
    d.verdict = Decision::Verdict::kDrop;
    d.kind = "drop";
    return d;
  }
  if (p.delay_prob > 0.0 && uniform() < p.delay_prob) {
    const double span = p.delay_max_ms - p.delay_min_ms;
    d.extra_delay_ms = p.delay_min_ms + (span > 0.0 ? uniform() * span : 0.0);
    d.kind = "delay";
  }
  if (p.duplicate_prob > 0.0 && uniform() < p.duplicate_prob) {
    d.duplicate = true;
    if (d.kind[0] == '\0') d.kind = "duplicate";
  }
  return d;
}

// --- Network -------------------------------------------------------------

void Network::listen(const Address& addr, Handler handler) {
  handlers_[addr] = std::move(handler);
}

void Network::close(const Address& addr) { handlers_.erase(addr); }

bool Network::is_listening(const Address& addr) const {
  return handlers_.count(addr) > 0;
}

void Network::set_link_latency_ms(const std::string& a, const std::string& b,
                                  double ms) {
  link_latency_ms_[{std::min(a, b), std::max(a, b)}] = ms;
}

double Network::latency_between(const std::string& a,
                                const std::string& b) const {
  if (a == b) return 0.05;  // loopback
  const auto it = link_latency_ms_.find({std::min(a, b), std::max(a, b)});
  return it == link_latency_ms_.end() ? default_latency_ms_ : it->second;
}

Result<Bytes> Network::call(const Address& from, const Address& to,
                            ByteView request) {
  Address target = to;
  Bytes tampered;
  ByteView payload = request;

  if (interceptor_) {
    MitmAction action = interceptor_(from, to, request);
    switch (action.kind) {
      case MitmAction::Kind::kForward:
        break;
      case MitmAction::Kind::kDrop:
        // The caller observes a timeout; a drop is never free — the full
        // configured timeout is charged to virtual time.
        charge_wait_ms(*clock_, call_timeout_ms_);
        return Error::make("net.timeout", "request dropped in transit");
      case MitmAction::Kind::kTamper:
        tampered = std::move(action.tampered_request);
        payload = tampered;
        break;
      case MitmAction::Kind::kRedirect:
        target = action.redirect_to;
        break;
    }
  }

  bool duplicate = false;
  if (fault_plan_) {
    const FaultPlan::Decision d =
        fault_plan_->decide(from.host, target.host, clock_->now_us());
    switch (d.verdict) {
      case FaultPlan::Decision::Verdict::kUnreachable:
        obs::metrics()
            .counter("net.fault.injected", {{"kind", d.kind}})
            .inc();
        charge_wait_ms(*clock_, call_timeout_ms_);
        return Error::make("net.unreachable",
                           target.to_string() + " (" + d.kind + ")");
      case FaultPlan::Decision::Verdict::kDrop:
        obs::metrics()
            .counter("net.fault.injected", {{"kind", d.kind}})
            .inc();
        charge_wait_ms(*clock_, call_timeout_ms_);
        return Error::make("net.timeout",
                           "dropped by fault plan: " + target.to_string());
      case FaultPlan::Decision::Verdict::kDeliver:
        if (d.extra_delay_ms > 0.0) {
          obs::metrics()
              .counter("net.fault.injected", {{"kind", "delay"}})
              .inc();
          charge_wait_ms(*clock_, d.extra_delay_ms);
        }
        duplicate = d.duplicate;
        break;
    }
  }

  const auto it = handlers_.find(target);
  if (it == handlers_.end()) {
    charge_wait_ms(*clock_, latency_between(from.host, target.host));
    return Error::make("net.connection_refused", target.to_string());
  }
  // One round trip.
  charge_wait_ms(*clock_, 2.0 * latency_between(from.host, target.host));
  ++messages_delivered_;
  Bytes response = it->second(payload, from);
  if (duplicate) {
    // The copy trails the original; the caller already has its response, so
    // the duplicate's is discarded. Stateful endpoints (TLS record layers)
    // legitimately observe — and must survive — the replay.
    obs::metrics()
        .counter("net.fault.injected", {{"kind", "duplicate"}})
        .inc();
    const auto again = handlers_.find(target);
    if (again != handlers_.end()) {
      ++messages_delivered_;
      (void)again->second(payload, from);
    }
  }
  return response;
}

void Network::dns_set_a(const std::string& name, const std::string& host) {
  dns_a_[name] = host;
}

void Network::dns_remove_a(const std::string& name) { dns_a_.erase(name); }

void Network::dns_set_txt(const std::string& name, const std::string& value) {
  dns_txt_[name].push_back(value);
}

void Network::dns_clear_txt(const std::string& name) {
  dns_txt_.erase(name);
}

std::vector<std::string> Network::dns_txt(const std::string& name) const {
  const auto it = dns_txt_.find(name);
  return it == dns_txt_.end() ? std::vector<std::string>{} : it->second;
}

Result<Address> Network::resolve(const std::string& name,
                                 std::uint16_t port) const {
  const auto it = dns_a_.find(name);
  if (it == dns_a_.end()) {
    return Error::make("net.nxdomain", name);
  }
  return Address{it->second, port};
}

}  // namespace revelio::net

#include "net/http.hpp"

#include "obs/metrics.hpp"

namespace revelio::net {

namespace {

void append_string(Bytes& out, const std::string& s) {
  append_u32be(out, static_cast<std::uint32_t>(s.size()));
  append(out, s);
}

struct Reader {
  ByteView data;
  std::size_t off = 0;
  bool failed = false;

  std::uint32_t u32() {
    if (off + 4 > data.size()) {
      failed = true;
      return 0;
    }
    const std::uint32_t v = read_u32be(data, off);
    off += 4;
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    // Overflow-proof bound: `off + len` could wrap on 32-bit size_t with a
    // hostile length field, so compare against the remaining bytes instead.
    if (failed || len > data.size() - off) {
      failed = true;
      return {};
    }
    std::string s(data.begin() + static_cast<std::ptrdiff_t>(off),
                  data.begin() + static_cast<std::ptrdiff_t>(off + len));
    off += len;
    return s;
  }
  Bytes rest() {
    Bytes b = to_bytes(data.subspan(off));
    off = data.size();
    return b;
  }
};

void append_headers(Bytes& out,
                    const std::map<std::string, std::string>& headers) {
  append_u32be(out, static_cast<std::uint32_t>(headers.size()));
  for (const auto& [k, v] : headers) {
    append_string(out, k);
    append_string(out, v);
  }
}

bool read_headers(Reader& r, std::map<std::string, std::string>& headers) {
  const std::uint32_t count = r.u32();
  if (count > 256) return false;
  for (std::uint32_t i = 0; i < count && !r.failed; ++i) {
    std::string k = r.str();
    std::string v = r.str();
    headers[std::move(k)] = std::move(v);
  }
  return !r.failed;
}

}  // namespace

Bytes HttpRequest::serialize() const {
  Bytes out;
  append(out, std::string_view("HTQ1"));
  append_string(out, method);
  append_string(out, path);
  append_string(out, host);
  append_headers(out, headers);
  append_u32be(out, static_cast<std::uint32_t>(body.size()));
  append(out, body);
  return out;
}

Result<HttpRequest> HttpRequest::parse(ByteView data) {
  if (data.size() < 4 || to_string(data.subspan(0, 4)) != "HTQ1") {
    return Error::make("http.bad_request_frame");
  }
  Reader r{data, 4};
  HttpRequest req;
  req.method = r.str();
  req.path = r.str();
  req.host = r.str();
  if (!read_headers(r, req.headers)) {
    return Error::make("http.bad_request_frame", "headers");
  }
  const std::uint32_t body_len = r.u32();
  // The declared length must consume exactly the rest of the frame: a
  // short frame is a truncation, a long one is a smuggled second message.
  if (r.failed || body_len != data.size() - r.off) {
    return Error::make("http.bad_request_frame", "body");
  }
  req.body = to_bytes(data.subspan(r.off, body_len));
  return req;
}

Bytes HttpResponse::serialize() const {
  Bytes out;
  append(out, std::string_view("HTS1"));
  append_u32be(out, static_cast<std::uint32_t>(status));
  append_headers(out, headers);
  append_u32be(out, static_cast<std::uint32_t>(body.size()));
  append(out, body);
  return out;
}

Result<HttpResponse> HttpResponse::parse(ByteView data) {
  if (data.size() < 4 || to_string(data.subspan(0, 4)) != "HTS1") {
    return Error::make("http.bad_response_frame");
  }
  Reader r{data, 4};
  HttpResponse resp;
  resp.status = static_cast<int>(r.u32());
  if (!read_headers(r, resp.headers)) {
    return Error::make("http.bad_response_frame", "headers");
  }
  const std::uint32_t body_len = r.u32();
  if (r.failed || body_len != data.size() - r.off) {
    return Error::make("http.bad_response_frame", "body");
  }
  resp.body = to_bytes(data.subspan(r.off, body_len));
  return resp;
}

HttpResponse HttpResponse::ok(Bytes body, const std::string& content_type) {
  HttpResponse r;
  r.status = 200;
  r.headers["content-type"] = content_type;
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::not_found() {
  HttpResponse r;
  r.status = 404;
  r.body = to_bytes(std::string_view("not found"));
  return r;
}

HttpResponse HttpResponse::error(int status, const std::string& message) {
  HttpResponse r;
  r.status = status;
  r.body = to_bytes(message);
  return r;
}

void HttpRouter::route(const std::string& method, const std::string& path,
                       HttpHandler handler) {
  if (!path.empty() && path.back() == '*') {
    prefix_[{method, path.substr(0, path.size() - 1)}] = std::move(handler);
  } else {
    exact_[{method, path}] = std::move(handler);
  }
}

HttpResponse HttpRouter::dispatch(const HttpRequest& request) const {
  HttpResponse response = [&]() -> HttpResponse {
    const auto it = exact_.find({request.method, request.path});
    if (it != exact_.end()) return it->second(request);
    // Longest matching prefix wins.
    const HttpHandler* best = nullptr;
    std::size_t best_len = 0;
    for (const auto& [key, handler] : prefix_) {
      const auto& [method, prefix] = key;
      if (method == request.method &&
          request.path.compare(0, prefix.size(), prefix) == 0 &&
          prefix.size() >= best_len) {
        best = &handler;
        best_len = prefix.size();
      }
    }
    if (best != nullptr) return (*best)(request);
    return HttpResponse::not_found();
  }();
  obs::metrics()
      .counter("http.request.count",
               {{"status", std::to_string(response.status)}})
      .inc();
  return response;
}

}  // namespace revelio::net

// TLS-lite: authenticated, encrypted sessions over the simulated network.
//
// A compact model of what Revelio needs from TLS 1.3: an ECDHE handshake,
// server authentication via a certificate chain and a transcript
// signature, and an AEAD record layer with per-direction sequence numbers.
// Crucially, the client can ask the session for the server's certificate
// public key — the hook the web extension uses to check that the TLS
// endpoint terminates inside the attested VM (§3.4.5, §5.3.2).
#pragma once

#include <map>
#include <memory>

#include "crypto/drbg.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/modes.hpp"
#include "net/network.hpp"
#include "pki/cert.hpp"
#include "pki/chain_cache.hpp"

namespace revelio::net {

/// Server-side TLS identity: the leaf key pair and the chain to staple.
struct TlsServerIdentity {
  const crypto::Curve* curve = nullptr;
  crypto::EcKeyPair key;
  pki::Certificate certificate;
  std::vector<pki::Certificate> intermediates;
};

/// Terminates TLS in front of an application handler.
class TlsServer {
 public:
  using PlainHandler =
      std::function<Bytes(ByteView plaintext, const Address& from)>;

  TlsServer(TlsServerIdentity identity, PlainHandler handler,
            crypto::HmacDrbg entropy);

  /// Registers this server at `addr` on the network.
  void install(Network& network, const Address& addr);

  /// Replaces the identity (certificate rotation — used by the paper's
  /// redirect attack: the provider swaps in a new, CA-valid certificate).
  void set_identity(TlsServerIdentity identity);

  const pki::Certificate& certificate() const {
    return identity_.certificate;
  }

  /// Drops all established sessions (connection reset).
  void reset_sessions();

  Bytes handle_frame(ByteView frame, const Address& from);

 private:
  struct Session {
    crypto::AeadCtrHmac c2s;
    crypto::AeadCtrHmac s2c;
    std::uint64_t recv_seq = 0;
    std::uint64_t send_seq = 0;
  };

  Bytes handle_client_hello(ByteView frame);
  Bytes handle_data(ByteView frame, const Address& from);

  TlsServerIdentity identity_;
  PlainHandler handler_;
  crypto::HmacDrbg entropy_;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::uint64_t next_session_id_ = 1;
};

/// What the client pins.
struct TlsTrustConfig {
  std::vector<pki::Certificate> roots;
  std::string server_name;      // SNI / expected DNS identity
  std::uint64_t now_us = 0;     // for validity checks
  /// Optional chain-verification cache shared across handshakes (the
  /// browser reconnecting to the same server skips the chain walk).
  pki::ChainVerifier* chain_cache = nullptr;
};

/// Client side of an established session.
class TlsSession {
 public:
  /// Runs the handshake; verifies the chain and transcript signature.
  /// Emits a "tls.handshake" span (with hello round-trip, chain-verify and
  /// transcript-verify child phases) and tls.handshake.* counters.
  static Result<TlsSession> connect(Network& network, const Address& from,
                                    const Address& to,
                                    const TlsTrustConfig& trust,
                                    crypto::HmacDrbg& entropy);

  /// Sends one encrypted request, returns the decrypted response.
  Result<Bytes> request(ByteView plaintext);

  const pki::Certificate& server_certificate() const { return server_cert_; }

  /// SEC1-encoded public key of the server's leaf certificate — compared by
  /// the web extension against the key hash in REPORT_DATA.
  const Bytes& server_public_key() const {
    return server_cert_.public_key;
  }

  const Address& peer() const { return peer_; }

 private:
  TlsSession(Network& network, Address from, Address peer,
             std::uint64_t session_id, Bytes c2s_key, Bytes s2c_key,
             pki::Certificate server_cert);

  /// Handshake body; connect() wraps it with the span + metrics.
  static Result<TlsSession> connect_impl(Network& network, const Address& from,
                                         const Address& to,
                                         const TlsTrustConfig& trust,
                                         crypto::HmacDrbg& entropy);

  Network* network_;
  Address from_;
  Address peer_;
  std::uint64_t session_id_;
  crypto::AeadCtrHmac c2s_;
  crypto::AeadCtrHmac s2c_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
  pki::Certificate server_cert_;
};

}  // namespace revelio::net

#include "net/resilience.hpp"

#include <algorithm>

namespace revelio::net {

double RetryPolicy::backoff_ms(std::uint32_t attempt,
                               crypto::HmacDrbg& jitter_drbg) const {
  double backoff = initial_backoff_ms;
  for (std::uint32_t i = 1; i < attempt; ++i) {
    backoff *= multiplier;
    if (backoff >= max_backoff_ms) break;
  }
  backoff = std::min(backoff, max_backoff_ms);
  if (jitter > 0.0) {
    const Bytes raw = jitter_drbg.generate(8);
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x = (x << 8) | raw[static_cast<size_t>(i)];
    const double u = static_cast<double>(x >> 11) / 9007199254740992.0;
    backoff *= 1.0 - jitter + 2.0 * jitter * u;
  }
  return backoff;
}

CircuitBreaker::CircuitBreaker(std::string endpoint)
    : CircuitBreaker(std::move(endpoint), Config{}) {}

CircuitBreaker::CircuitBreaker(std::string endpoint, Config config)
    : endpoint_(std::move(endpoint)), config_(config) {
  transition(State::kClosed);
}

CircuitBreaker::State CircuitBreaker::state(const SimClock& clock) const {
  if (state_ == State::kOpen &&
      clock.now_us() >= opened_at_us_ + static_cast<SimClock::Micros>(
                                            config_.open_ms * 1000.0)) {
    return State::kHalfOpen;
  }
  return state_;
}

bool CircuitBreaker::allow(const SimClock& clock) {
  const State effective = state(clock);
  if (effective != state_) transition(effective);  // open -> half-open
  return state_ != State::kOpen;
}

void CircuitBreaker::on_success(const SimClock& clock) {
  consecutive_failures_ = 0;
  if (state(clock) == State::kHalfOpen) {
    if (++half_open_successes_ >= config_.half_open_successes) {
      transition(State::kClosed);
    }
  } else if (state_ != State::kClosed) {
    transition(State::kClosed);
  }
}

void CircuitBreaker::on_failure(const SimClock& clock) {
  const State effective = state(clock);
  if (effective != state_) transition(effective);
  if (state_ == State::kHalfOpen) {
    // A failed probe re-opens the breaker for a fresh cooldown.
    opened_at_us_ = clock.now_us();
    transition(State::kOpen);
    return;
  }
  if (state_ == State::kClosed &&
      ++consecutive_failures_ >= config_.failure_threshold) {
    opened_at_us_ = clock.now_us();
    transition(State::kOpen);
  }
}

void CircuitBreaker::transition(State next) {
  if (next == State::kOpen && state_ != State::kOpen) {
    ++times_opened_;
    obs::metrics()
        .counter("breaker.open.count", {{"endpoint", endpoint_}})
        .inc();
  }
  if (next != State::kHalfOpen) half_open_successes_ = 0;
  if (next == State::kClosed) consecutive_failures_ = 0;
  state_ = next;
  obs::metrics()
      .gauge("breaker.state", {{"endpoint", endpoint_}})
      .set(state_ == State::kClosed ? 0.0
                                    : (state_ == State::kOpen ? 1.0 : 2.0));
}

Failover::Failover(std::vector<Address> replicas,
                   CircuitBreaker::Config breaker_config, std::string service)
    : service_(std::move(service)),
      replicas_(std::move(replicas)),
      breaker_config_(breaker_config) {}

CircuitBreaker& Failover::breaker(const Address& replica) {
  const std::string key = replica.to_string();
  auto it = breakers_.find(key);
  if (it == breakers_.end()) {
    it = breakers_.emplace(key, CircuitBreaker(key, breaker_config_)).first;
  }
  return it->second;
}

}  // namespace revelio::net

// Simulated network fabric.
//
// A synchronous request/response network: endpoints register handlers at
// (host, port) addresses, calls charge round-trip latency to the simulated
// clock, and an attacker hook can observe, drop, tamper with or redirect
// any message — the man-in-the-middle capabilities the paper's threat
// model grants the cloud provider (§3.2). DNS lives here too, under the
// *service provider's* control (§5.3.2: "they control access to DNS").
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/sim_clock.hpp"

namespace revelio::net {

struct Address {
  std::string host;
  std::uint16_t port = 0;

  std::string to_string() const {
    return host + ":" + std::to_string(port);
  }
  friend auto operator<=>(const Address&, const Address&) = default;
};

/// Attacker's decision for one in-flight message.
struct MitmAction {
  enum class Kind { kForward, kDrop, kTamper, kRedirect };
  Kind kind = Kind::kForward;
  Bytes tampered_request;  // for kTamper
  Address redirect_to;     // for kRedirect

  static MitmAction forward() { return {}; }
  static MitmAction drop() { return {Kind::kDrop, {}, {}}; }
  static MitmAction tamper(Bytes request) {
    return {Kind::kTamper, std::move(request), {}};
  }
  static MitmAction redirect(Address to) {
    return {Kind::kRedirect, {}, std::move(to)};
  }
};

class Network {
 public:
  using Handler = std::function<Bytes(ByteView request, const Address& from)>;
  using Interceptor = std::function<MitmAction(
      const Address& from, const Address& to, ByteView request)>;

  explicit Network(SimClock& clock) : clock_(&clock) {}

  SimClock& clock() { return *clock_; }

  // --- Topology --------------------------------------------------------

  void listen(const Address& addr, Handler handler);
  void close(const Address& addr);
  bool is_listening(const Address& addr) const;

  /// Default one-way latency between any two distinct hosts (ms).
  void set_default_latency_ms(double ms) { default_latency_ms_ = ms; }
  /// Overrides the one-way latency between two hosts (symmetric).
  void set_link_latency_ms(const std::string& a, const std::string& b,
                           double ms);

  // --- Data plane ------------------------------------------------------

  /// Synchronous RPC: delivers `request` to the handler at `to`, returns
  /// its response. Charges one round trip of latency.
  Result<Bytes> call(const Address& from, const Address& to,
                     ByteView request);

  /// Installs/clears the attacker. The interceptor sees every message.
  void set_interceptor(Interceptor interceptor) {
    interceptor_ = std::move(interceptor);
  }
  void clear_interceptor() { interceptor_ = nullptr; }

  std::uint64_t messages_delivered() const { return messages_delivered_; }

  // --- DNS (service-provider controlled) --------------------------------

  void dns_set_a(const std::string& name, const std::string& host);
  void dns_remove_a(const std::string& name);
  void dns_set_txt(const std::string& name, const std::string& value);
  void dns_clear_txt(const std::string& name);
  std::vector<std::string> dns_txt(const std::string& name) const;

  /// Resolves a DNS name to a concrete address.
  Result<Address> resolve(const std::string& name, std::uint16_t port) const;

 private:
  double latency_between(const std::string& a, const std::string& b) const;

  SimClock* clock_;
  double default_latency_ms_ = 2.6;  // paper's base RTT is 5.2 ms
  std::map<std::pair<std::string, std::string>, double> link_latency_ms_;
  std::map<Address, Handler> handlers_;
  Interceptor interceptor_;
  std::map<std::string, std::string> dns_a_;
  std::map<std::string, std::vector<std::string>> dns_txt_;
  std::uint64_t messages_delivered_ = 0;
};

}  // namespace revelio::net

// Simulated network fabric.
//
// A synchronous request/response network: endpoints register handlers at
// (host, port) addresses, calls charge round-trip latency to the simulated
// clock, and an attacker hook can observe, drop, tamper with or redirect
// any message — the man-in-the-middle capabilities the paper's threat
// model grants the cloud provider (§3.2). DNS lives here too, under the
// *service provider's* control (§5.3.2: "they control access to DNS").
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/sim_clock.hpp"
#include "crypto/drbg.hpp"

namespace revelio::net {

struct Address {
  std::string host;
  std::uint16_t port = 0;

  std::string to_string() const {
    return host + ":" + std::to_string(port);
  }
  friend auto operator<=>(const Address&, const Address&) = default;
};

/// Attacker's decision for one in-flight message.
struct MitmAction {
  enum class Kind { kForward, kDrop, kTamper, kRedirect };
  Kind kind = Kind::kForward;
  Bytes tampered_request;  // for kTamper
  Address redirect_to;     // for kRedirect

  static MitmAction forward() { return {}; }
  static MitmAction drop() { return {Kind::kDrop, {}, {}}; }
  static MitmAction tamper(Bytes request) {
    return {Kind::kTamper, std::move(request), {}};
  }
  static MitmAction redirect(Address to) {
    return {Kind::kRedirect, {}, std::move(to)};
  }
};

/// Per-link fault probabilities. Probabilities are evaluated per message
/// against the plan's DRBG, so a given seed yields one fixed schedule.
struct LinkFaultProfile {
  double drop_prob = 0.0;       // message lost; caller pays the call timeout
  double delay_prob = 0.0;      // extra latency added on top of the link RTT
  double delay_min_ms = 1.0;
  double delay_max_ms = 25.0;
  double duplicate_prob = 0.0;  // handler sees the same message twice
};

/// Seeded, deterministic fault-injection plan for the network fabric.
///
/// All randomness comes from a single HmacDrbg: the same seed plus the same
/// sequence of decide() calls reproduces the identical fault schedule, so a
/// chaos run can be replayed bit-for-bit (FoundationDB-style deterministic
/// simulation). Window faults — partitions, blackholes, flaps — are pure
/// functions of the SimClock, so they are deterministic in virtual time too.
class FaultPlan {
 public:
  explicit FaultPlan(ByteView seed);

  /// Profile applied to links without an explicit override.
  void set_default_profile(const LinkFaultProfile& profile);
  /// Symmetric per-link override keyed on the unordered host pair.
  void set_link_profile(const std::string& a, const std::string& b,
                        const LinkFaultProfile& profile);

  /// Symmetric host partition: every message between a and b is unreachable
  /// until heal()ed. Partition checks precede probabilistic faults.
  void partition(const std::string& a, const std::string& b);
  void heal(const std::string& a, const std::string& b);

  /// Endpoint blackhole: messages to `host` during [start_us, end_us) of
  /// virtual time are unreachable.
  void blackhole(const std::string& host, SimClock::Micros start_us,
                 SimClock::Micros end_us);
  /// Endpoint flap: `host` is down for the first `down_us` of every
  /// `period_us`, phase-anchored at `phase_us`.
  void flap(const std::string& host, SimClock::Micros period_us,
            SimClock::Micros down_us, SimClock::Micros phase_us = 0);

  /// Removes every partition, blackhole and flap and zeroes all
  /// probabilities; the DRBG keeps its state so a healed plan stays on the
  /// same deterministic schedule if probabilities are re-armed.
  void clear_faults();

  /// Verdict for one in-flight message.
  struct Decision {
    enum class Verdict { kDeliver, kDrop, kUnreachable };
    Verdict verdict = Verdict::kDeliver;
    double extra_delay_ms = 0.0;
    bool duplicate = false;
    const char* kind = "";  // metric label when a fault fired
  };
  Decision decide(const std::string& from, const std::string& to,
                  SimClock::Micros now_us);

 private:
  using HostPair = std::pair<std::string, std::string>;
  static HostPair key(const std::string& a, const std::string& b);
  const LinkFaultProfile& profile_for(const std::string& a,
                                      const std::string& b) const;
  bool endpoint_down(const std::string& host, SimClock::Micros now_us,
                     const char** kind) const;
  /// One DRBG draw mapped to [0, 1).
  double uniform();

  crypto::HmacDrbg drbg_;
  LinkFaultProfile default_profile_;
  std::map<HostPair, LinkFaultProfile> link_profiles_;
  std::set<HostPair> partitions_;
  struct Window {
    SimClock::Micros start_us = 0;
    SimClock::Micros end_us = 0;
  };
  std::map<std::string, std::vector<Window>> blackholes_;
  struct Flap {
    SimClock::Micros period_us = 0;
    SimClock::Micros down_us = 0;
    SimClock::Micros phase_us = 0;
  };
  std::map<std::string, std::vector<Flap>> flaps_;
};

class Network {
 public:
  using Handler = std::function<Bytes(ByteView request, const Address& from)>;
  using Interceptor = std::function<MitmAction(
      const Address& from, const Address& to, ByteView request)>;

  explicit Network(SimClock& clock) : clock_(&clock) {}

  SimClock& clock() { return *clock_; }

  // --- Topology --------------------------------------------------------

  void listen(const Address& addr, Handler handler);
  void close(const Address& addr);
  bool is_listening(const Address& addr) const;

  /// Default one-way latency between any two distinct hosts (ms).
  void set_default_latency_ms(double ms) { default_latency_ms_ = ms; }
  /// Overrides the one-way latency between two hosts (symmetric).
  void set_link_latency_ms(const std::string& a, const std::string& b,
                           double ms);

  // --- Data plane ------------------------------------------------------

  /// Synchronous RPC: delivers `request` to the handler at `to`, returns
  /// its response. Charges one round trip of latency.
  Result<Bytes> call(const Address& from, const Address& to,
                     ByteView request);

  /// Installs/clears the attacker. The interceptor sees every message.
  void set_interceptor(Interceptor interceptor) {
    interceptor_ = std::move(interceptor);
  }
  void clear_interceptor() { interceptor_ = nullptr; }

  /// Installs/clears the chaos fault plan. Faults apply after the attacker
  /// interceptor has chosen the (possibly redirected) target.
  void set_fault_plan(FaultPlan plan) { fault_plan_ = std::move(plan); }
  void clear_fault_plan() { fault_plan_.reset(); }
  FaultPlan* fault_plan() {
    return fault_plan_ ? &*fault_plan_ : nullptr;
  }

  /// Virtual time a caller waits before concluding a message was lost. A
  /// drop is never free: the full timeout is charged to the SimClock.
  void set_call_timeout_ms(double ms) { call_timeout_ms_ = ms; }
  double call_timeout_ms() const { return call_timeout_ms_; }

  std::uint64_t messages_delivered() const { return messages_delivered_; }

  // --- DNS (service-provider controlled) --------------------------------

  void dns_set_a(const std::string& name, const std::string& host);
  void dns_remove_a(const std::string& name);
  void dns_set_txt(const std::string& name, const std::string& value);
  void dns_clear_txt(const std::string& name);
  std::vector<std::string> dns_txt(const std::string& name) const;

  /// Resolves a DNS name to a concrete address.
  Result<Address> resolve(const std::string& name, std::uint16_t port) const;

 private:
  double latency_between(const std::string& a, const std::string& b) const;

  SimClock* clock_;
  double default_latency_ms_ = 2.6;  // paper's base RTT is 5.2 ms
  double call_timeout_ms_ = 1000.0;
  std::map<std::pair<std::string, std::string>, double> link_latency_ms_;
  std::map<Address, Handler> handlers_;
  Interceptor interceptor_;
  std::optional<FaultPlan> fault_plan_;
  std::map<std::string, std::string> dns_a_;
  std::map<std::string, std::vector<std::string>> dns_txt_;
  std::uint64_t messages_delivered_ = 0;
};

}  // namespace revelio::net

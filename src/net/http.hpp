// HTTP-lite: the request/response vocabulary of the web-facing services.
//
// Carries the semantics Revelio needs — methods, paths, headers, bodies,
// status codes — over a compact binary framing (we are simulating the
// protocol stack, not parsing RFC 7230 text).
#pragma once

#include <functional>
#include <map>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace revelio::net {

struct HttpRequest {
  std::string method = "GET";
  std::string path = "/";
  std::string host;  // Host header equivalent
  std::map<std::string, std::string> headers;
  Bytes body;

  Bytes serialize() const;
  static Result<HttpRequest> parse(ByteView data);
};

struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;
  Bytes body;

  Bytes serialize() const;
  static Result<HttpResponse> parse(ByteView data);

  static HttpResponse ok(Bytes body,
                         const std::string& content_type = "text/plain");
  static HttpResponse not_found();
  static HttpResponse error(int status, const std::string& message);
};

/// Route table mapping (method, path) to handlers; exact paths first, then
/// longest prefix routes registered with a trailing '*'.
class HttpRouter {
 public:
  using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

  void route(const std::string& method, const std::string& path,
             HttpHandler handler);

  HttpResponse dispatch(const HttpRequest& request) const;

 private:
  std::map<std::pair<std::string, std::string>, HttpHandler> exact_;
  std::map<std::pair<std::string, std::string>, HttpHandler> prefix_;
};

}  // namespace revelio::net

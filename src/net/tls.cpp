#include "net/tls.hpp"

#include "crypto/kdf.hpp"
#include "crypto/sha2.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace revelio::net {

namespace {

constexpr std::uint8_t kFrameClientHello = 0x01;
constexpr std::uint8_t kFrameServerHello = 0x02;
constexpr std::uint8_t kFrameData = 0x03;
constexpr std::uint8_t kFrameAlert = 0x0f;

// The handshake runs on P-256 ephemerals; server identities may sit on
// either curve (identity signatures carry their own curve name).
const crypto::Curve& handshake_curve() { return crypto::p256(); }

Bytes alert(const std::string& reason) {
  Bytes out;
  append_u8(out, kFrameAlert);
  append(out, reason);
  return out;
}

Result<std::string> parse_alert(ByteView frame) {
  if (frame.empty() || frame[0] != kFrameAlert) {
    return Error::make("tls.not_alert");
  }
  return to_string(frame.subspan(1));
}

FixedBytes<16> record_nonce(std::uint8_t direction, std::uint64_t seq) {
  FixedBytes<16> nonce;
  nonce[0] = direction;
  for (int i = 0; i < 8; ++i) {
    nonce[8 + i] = static_cast<std::uint8_t>(seq >> (56 - 8 * i));
  }
  return nonce;
}

Bytes record_aad(std::uint8_t direction, std::uint64_t session,
                 std::uint64_t seq) {
  Bytes aad;
  append_u8(aad, direction);
  append_u64be(aad, session);
  append_u64be(aad, seq);
  return aad;
}

constexpr std::uint8_t kDirC2s = 0xc5;
constexpr std::uint8_t kDirS2c = 0x5c;

struct KeySchedule {
  Bytes c2s_key;
  Bytes s2c_key;
};

KeySchedule derive_keys(ByteView ecdhe_secret, ByteView client_random,
                        ByteView server_random) {
  const Bytes salt = concat(client_random, server_random);
  KeySchedule ks;
  ks.c2s_key = crypto::hkdf_sha256(ecdhe_secret, salt,
                                   to_bytes(std::string_view("tls-lite c2s")),
                                   crypto::AeadCtrHmac::kKeySize);
  ks.s2c_key = crypto::hkdf_sha256(ecdhe_secret, salt,
                                   to_bytes(std::string_view("tls-lite s2c")),
                                   crypto::AeadCtrHmac::kKeySize);
  return ks;
}

/// Transcript hash binding the server signature to the whole handshake.
crypto::Digest48 transcript_hash(ByteView client_hello,
                                 std::uint64_t session_id,
                                 ByteView server_random,
                                 ByteView server_eph_pub,
                                 const std::vector<Bytes>& cert_chain) {
  crypto::Sha384 h;
  h.update(to_bytes(std::string_view("tls-lite-transcript-v1")));
  h.update(client_hello);
  Bytes sid;
  append_u64be(sid, session_id);
  h.update(sid);
  h.update(server_random);
  h.update(server_eph_pub);
  for (const auto& cert : cert_chain) {
    Bytes len;
    append_u32be(len, static_cast<std::uint32_t>(cert.size()));
    h.update(len);
    h.update(cert);
  }
  return h.finish();
}

}  // namespace

TlsServer::TlsServer(TlsServerIdentity identity, PlainHandler handler,
                     crypto::HmacDrbg entropy)
    : identity_(std::move(identity)),
      handler_(std::move(handler)),
      entropy_(std::move(entropy)) {}

void TlsServer::install(Network& network, const Address& addr) {
  network.listen(addr, [this](ByteView frame, const Address& from) {
    return handle_frame(frame, from);
  });
}

void TlsServer::set_identity(TlsServerIdentity identity) {
  identity_ = std::move(identity);
  // A new certificate implies fresh connections only.
  reset_sessions();
}

void TlsServer::reset_sessions() { sessions_.clear(); }

Bytes TlsServer::handle_frame(ByteView frame, const Address& from) {
  if (frame.empty()) return alert("empty frame");
  switch (frame[0]) {
    case kFrameClientHello:
      return handle_client_hello(frame);
    case kFrameData:
      return handle_data(frame, from);
    default:
      return alert("unknown frame type");
  }
}

Bytes TlsServer::handle_client_hello(ByteView frame) {
  // Layout: type(1) | client_random(32) | eph_pub_len(4) | eph_pub.
  if (frame.size() < 1 + 32 + 4) return alert("short client hello");
  const ByteView client_random = frame.subspan(1, 32);
  const std::uint32_t pub_len = read_u32be(frame, 33);
  if (37 + pub_len > frame.size()) return alert("short client hello");
  const ByteView client_pub_bytes = frame.subspan(37, pub_len);

  const auto client_pub = handshake_curve().decode_point(client_pub_bytes);
  if (!client_pub.ok()) return alert("bad client ephemeral");

  const crypto::EcKeyPair server_eph =
      crypto::ec_generate(handshake_curve(), entropy_);
  const Bytes server_random = entropy_.generate(32);
  auto secret =
      crypto::ecdh_shared_secret(handshake_curve(), server_eph.d, *client_pub);
  if (!secret.ok()) return alert("ecdh failure");

  const std::uint64_t session_id = next_session_id_++;
  const Bytes server_eph_pub = server_eph.public_encoded(handshake_curve());

  std::vector<Bytes> chain_bytes;
  chain_bytes.push_back(identity_.certificate.serialize());
  for (const auto& inter : identity_.intermediates) {
    chain_bytes.push_back(inter.serialize());
  }

  const auto th = transcript_hash(frame, session_id, server_random,
                                  server_eph_pub, chain_bytes);
  const Bytes signature =
      crypto::ecdsa_sign(*identity_.curve, identity_.key.d, th.view())
          .encode(*identity_.curve);

  const KeySchedule ks =
      derive_keys(*secret, client_random, server_random);
  auto session = std::make_unique<Session>(
      Session{crypto::AeadCtrHmac(ks.c2s_key), crypto::AeadCtrHmac(ks.s2c_key),
              0, 0});
  sessions_[session_id] = std::move(session);

  Bytes out;
  append_u8(out, kFrameServerHello);
  append_u64be(out, session_id);
  append(out, server_random);
  append_u32be(out, static_cast<std::uint32_t>(server_eph_pub.size()));
  append(out, server_eph_pub);
  append_u32be(out, static_cast<std::uint32_t>(chain_bytes.size()));
  for (const auto& cert : chain_bytes) {
    append_u32be(out, static_cast<std::uint32_t>(cert.size()));
    append(out, cert);
  }
  append_u32be(out, static_cast<std::uint32_t>(signature.size()));
  append(out, signature);
  return out;
}

Bytes TlsServer::handle_data(ByteView frame, const Address& from) {
  // Layout: type(1) | session_id(8) | sealed record.
  if (frame.size() < 9) return alert("short data frame");
  const std::uint64_t session_id = read_u64be(frame, 1);
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return alert("unknown session");
  Session& session = *it->second;

  auto plaintext = session.c2s.open(
      record_aad(kDirC2s, session_id, session.recv_seq), frame.subspan(9));
  if (!plaintext.ok()) return alert("record authentication failed");
  ++session.recv_seq;

  const Bytes response = handler_(*plaintext, from);

  const std::uint64_t seq = session.send_seq++;
  Bytes out;
  append_u8(out, kFrameData);
  append_u64be(out, session_id);
  const Bytes sealed = session.s2c.seal(record_nonce(kDirS2c, seq).view(),
                                        record_aad(kDirS2c, session_id, seq),
                                        response);
  append(out, sealed);
  return out;
}

TlsSession::TlsSession(Network& network, Address from, Address peer,
                       std::uint64_t session_id, Bytes c2s_key, Bytes s2c_key,
                       pki::Certificate server_cert)
    : network_(&network),
      from_(std::move(from)),
      peer_(std::move(peer)),
      session_id_(session_id),
      c2s_(c2s_key),
      s2c_(s2c_key),
      server_cert_(std::move(server_cert)) {}

Result<TlsSession> TlsSession::connect(Network& network, const Address& from,
                                       const Address& to,
                                       const TlsTrustConfig& trust,
                                       crypto::HmacDrbg& entropy) {
  obs::Span span("tls.handshake");
  span.attr("server",
            trust.server_name.empty() ? to.to_string() : trust.server_name);
  auto session = connect_impl(network, from, to, trust, entropy);
  obs::metrics().counter("tls.handshake.count").inc();
  if (!session.ok()) {
    obs::metrics()
        .counter("tls.handshake.fail.count",
                 {{"reason", session.error().code}})
        .inc();
    span.attr("result", session.error().code);
  } else {
    span.attr("result", "ok");
  }
  return session;
}

Result<TlsSession> TlsSession::connect_impl(Network& network,
                                            const Address& from,
                                            const Address& to,
                                            const TlsTrustConfig& trust,
                                            crypto::HmacDrbg& entropy) {
  const crypto::EcKeyPair client_eph =
      crypto::ec_generate(handshake_curve(), entropy);
  const Bytes client_random = entropy.generate(32);
  const Bytes client_pub = client_eph.public_encoded(handshake_curve());

  Bytes hello;
  append_u8(hello, kFrameClientHello);
  append(hello, client_random);
  append_u32be(hello, static_cast<std::uint32_t>(client_pub.size()));
  append(hello, client_pub);

  obs::Span hello_span("tls.hello_roundtrip");
  auto response = network.call(from, to, hello);
  hello_span.end();
  if (!response.ok()) return response.error();
  const ByteView frame = *response;
  if (auto alert_reason = parse_alert(frame); alert_reason.ok()) {
    return Error::make("tls.alert", *alert_reason);
  }
  if (frame.size() < 1 + 8 + 32 + 4 || frame[0] != kFrameServerHello) {
    return Error::make("tls.bad_server_hello");
  }
  std::size_t off = 1;
  const std::uint64_t session_id = read_u64be(frame, off);
  off += 8;
  const ByteView server_random = frame.subspan(off, 32);
  off += 32;
  const std::uint32_t eph_len = read_u32be(frame, off);
  off += 4;
  if (off + eph_len + 4 > frame.size()) {
    return Error::make("tls.bad_server_hello", "ephemeral");
  }
  const ByteView server_eph_pub = frame.subspan(off, eph_len);
  off += eph_len;
  const std::uint32_t cert_count = read_u32be(frame, off);
  off += 4;
  if (cert_count == 0 || cert_count > 8) {
    return Error::make("tls.bad_server_hello", "certificate count");
  }
  std::vector<Bytes> chain_bytes;
  std::vector<pki::Certificate> chain;
  for (std::uint32_t i = 0; i < cert_count; ++i) {
    if (off + 4 > frame.size()) {
      return Error::make("tls.bad_server_hello", "truncated chain");
    }
    const std::uint32_t cert_len = read_u32be(frame, off);
    off += 4;
    if (off + cert_len > frame.size()) {
      return Error::make("tls.bad_server_hello", "truncated certificate");
    }
    chain_bytes.push_back(to_bytes(frame.subspan(off, cert_len)));
    auto cert = pki::Certificate::parse(chain_bytes.back());
    if (!cert.ok()) return cert.error();
    chain.push_back(std::move(*cert));
    off += cert_len;
  }
  if (off + 4 > frame.size()) {
    return Error::make("tls.bad_server_hello", "signature length");
  }
  const std::uint32_t sig_len = read_u32be(frame, off);
  off += 4;
  if (off + sig_len > frame.size()) {
    return Error::make("tls.bad_server_hello", "signature");
  }
  const ByteView signature = frame.subspan(off, sig_len);

  // 1. Verify the chain against pinned roots and the expected name.
  const pki::Certificate& leaf = chain.front();
  pki::ChainVerifyOptions chain_options;
  chain_options.now_us = trust.now_us;
  if (!trust.server_name.empty()) chain_options.dns_name = trust.server_name;
  const std::vector<pki::Certificate> intermediates(chain.begin() + 1,
                                                    chain.end());
  Status chain_status = Status::success();
  if (trust.chain_cache != nullptr) {
    // The cache emits its own pki.chain_verify span + result counters.
    chain_status = trust.chain_cache->verify(leaf, intermediates, trust.roots,
                                             chain_options);
  } else {
    obs::Span chain_span("pki.chain_verify");
    chain_span.attr("cache", "none");
    chain_span.attr("chain_len", static_cast<std::uint64_t>(chain.size()));
    chain_status =
        pki::verify_chain(leaf, intermediates, trust.roots, chain_options);
    const std::string result =
        chain_status.ok() ? "ok" : chain_status.error().code;
    chain_span.attr("result", result);
    obs::metrics()
        .counter("pki.chain_verify.result.count", {{"result", result}})
        .inc();
  }
  if (!chain_status.ok()) {
    return Error::make("tls.untrusted_certificate",
                       chain_status.error().to_string());
  }

  // 2. Verify the transcript signature under the leaf key (proves the
  // server holds the certified private key and binds the ephemerals).
  auto leaf_curve = pki::curve_by_name(leaf.curve_name);
  if (!leaf_curve.ok()) return leaf_curve.error();
  const auto leaf_pub = (*leaf_curve)->decode_point(leaf.public_key);
  if (!leaf_pub.ok()) {
    return Error::make("tls.bad_leaf_key", leaf_pub.error().to_string());
  }
  auto sig = crypto::EcdsaSignature::decode(**leaf_curve, signature);
  if (!sig.ok()) return sig.error();
  obs::Span transcript_span("tls.transcript_verify");
  transcript_span.attr("curve", leaf.curve_name);
  const auto th = transcript_hash(hello, session_id, server_random,
                                  server_eph_pub, chain_bytes);
  if (!crypto::ecdsa_verify(**leaf_curve, *leaf_pub, th.view(), *sig)) {
    transcript_span.attr("result", "bad_signature");
    return Error::make("tls.bad_transcript_signature",
                       "server did not prove key possession");
  }
  transcript_span.attr("result", "ok");
  transcript_span.end();

  // 3. Key schedule.
  const auto server_pub = handshake_curve().decode_point(server_eph_pub);
  if (!server_pub.ok()) {
    return Error::make("tls.bad_server_ephemeral",
                       server_pub.error().to_string());
  }
  auto secret =
      crypto::ecdh_shared_secret(handshake_curve(), client_eph.d, *server_pub);
  if (!secret.ok()) return secret.error();
  const KeySchedule ks = derive_keys(*secret, client_random, server_random);

  return TlsSession(network, from, to, session_id, ks.c2s_key, ks.s2c_key,
                    leaf);
}

Result<Bytes> TlsSession::request(ByteView plaintext) {
  const std::uint64_t seq = send_seq_;
  Bytes frame;
  append_u8(frame, kFrameData);
  append_u64be(frame, session_id_);
  const Bytes sealed =
      c2s_.seal(record_nonce(kDirC2s, seq).view(),
                record_aad(kDirC2s, session_id_, seq), plaintext);
  append(frame, sealed);

  auto response = network_->call(from_, peer_, frame);
  if (!response.ok()) return response.error();
  if (auto alert_reason = parse_alert(*response); alert_reason.ok()) {
    return Error::make("tls.alert", *alert_reason);
  }
  const ByteView rframe = *response;
  if (rframe.size() < 9 || rframe[0] != kFrameData ||
      read_u64be(rframe, 1) != session_id_) {
    return Error::make("tls.bad_record");
  }
  ++send_seq_;
  auto plain = s2c_.open(record_aad(kDirS2c, session_id_, recv_seq_),
                         rframe.subspan(9));
  if (!plain.ok()) {
    return Error::make("tls.record_auth_failed",
                       "response record failed authentication");
  }
  ++recv_seq_;
  return plain;
}

}  // namespace revelio::net

// Deterministic virtual-time event loop.
//
// The concurrent gateway (revelio/session_engine.hpp) used to carry one
// OS thread per in-flight session: a session waiting on a simulated KDS
// round trip *blocked its pool lane* for the whole virtual wait, so
// throughput topped out near the pool width and memory grew with thread
// stacks. This loop inverts that: a wait is a *scheduled wake event* — a
// 40-byte heap entry — and the thread moves on to whichever session is
// ready. One worker can carry tens of thousands of parked sessions.
//
// Determinism is the design constraint, same as parallel.hpp and
// net::FaultPlan: a run must be bit-identical given the same inputs.
//
//  - Total order: every event carries (due_us, track, seq). `track` is a
//    caller-chosen stream id (the session engine uses the world index);
//    `seq` is a per-loop counter. Batches pop in exactly this order.
//  - Batch-synchronous dispatch: next_batch() returns EVERY event due at
//    the earliest pending instant and advances now_us() to it. The caller
//    dispatches the batch (possibly in parallel across tracks — tracks
//    are independent by contract), then schedules follow-up events from
//    ONE thread before popping the next batch. Scheduling from a single
//    thread is what keeps seq assignment — and therefore the order of
//    same-instant events — reproducible; run_serial() packages that
//    discipline for single-threaded callers.
//  - No wall clock, no randomness: virtual time only advances to event
//    due times, so the same schedule replays bit-for-bit.
//
// Memory is O(pending events) with no per-event allocation beyond the
// heap slot: payloads are plain 64-bit values (a session index), not
// closures, which is what keeps bytes-per-parked-session flat at 100k
// sessions (the gateway bench reports the exact figure).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

namespace revelio::common {

class EventLoop {
 public:
  using Micros = std::uint64_t;

  /// One scheduled wake. Plain data — cheap to copy, trivially parkable.
  struct Event {
    Micros due_us = 0;      // virtual instant the wake fires
    std::size_t track = 0;  // independence class (see class comment)
    std::uint64_t seq = 0;  // per-loop tiebreak within an instant
    std::uint64_t id = 0;   // handle for cancel()
    std::uint64_t payload = 0;  // caller data (e.g. a session index)
  };

  EventLoop() = default;

  /// Schedules a wake at absolute virtual time `due_us` (clamped to now —
  /// the past is not addressable). Returns the event id.
  std::uint64_t schedule_at(Micros due_us, std::size_t track,
                            std::uint64_t payload);
  /// Schedules a wake `delay_us` after now_us().
  std::uint64_t schedule_after(Micros delay_us, std::size_t track,
                               std::uint64_t payload);

  /// Cancels a scheduled event. Returns false if it already fired (or was
  /// already cancelled). O(1); the heap slot is reclaimed lazily.
  bool cancel(std::uint64_t id);

  /// Virtual time of the most recent batch (0 before the first).
  Micros now_us() const { return now_us_; }
  /// Events scheduled and not yet popped or cancelled — the loop's parked
  /// population.
  std::size_t pending() const { return pending_; }
  bool empty() const { return pending_ == 0; }

  /// Pops every event due at the earliest pending instant, in (track, seq)
  /// order, advancing now_us() to that instant. Returns an empty vector
  /// when nothing is pending. `out` is reused storage for allocation-free
  /// steady state.
  void next_batch(std::vector<Event>& out);
  std::vector<Event> next_batch();

  /// Single-threaded convenience: drains the loop, calling
  /// `fn(event, now_us)` for each event in deterministic order. Handlers
  /// may schedule further events. The session engine uses next_batch()
  /// directly instead, to fan batches out over its thread pool.
  void run_serial(const std::function<void(const Event&, Micros)>& fn);

  struct Stats {
    std::uint64_t scheduled = 0;   // schedule_* calls accepted
    std::uint64_t dispatched = 0;  // events returned by next_batch
    std::uint64_t cancelled = 0;
    std::uint64_t batches = 0;
    std::size_t max_batch = 0;     // largest single batch
    std::size_t peak_pending = 0;  // high-water parked population
    Micros end_us = 0;             // due time of the last popped batch
  };
  const Stats& stats() const { return stats_; }

  /// High-water heap footprint in bytes: peak simultaneously-pending
  /// events times the per-event heap cost (the heap slot plus the
  /// live-id set entry that makes cancel() O(1) and exact).
  std::size_t peak_heap_bytes() const {
    return stats_.peak_pending * (sizeof(Event) + sizeof(std::uint64_t));
  }

 private:
  /// Min-heap on (due_us, track, seq) over heap_ (std::push_heap /
  /// std::pop_heap with a reversed comparator).
  static bool later(const Event& a, const Event& b);

  std::vector<Event> heap_;
  std::unordered_set<std::uint64_t> live_;  // parked, cancellable ids
  std::unordered_set<std::uint64_t> cancelled_;
  Micros now_us_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t pending_ = 0;
  Stats stats_;
};

// ---------------------------------------------------------------------------
// Virtual-wait observation.
//
// Inside one dispatched stage, lower layers advance the world's SimClock
// for time the session is *waiting* — network round trips and timeouts
// (net/network.cpp), retry backoff sleeps (net/resilience.hpp). Under the
// event engine those advances become the park duration of the next wake,
// and the engine wants them split out from compute so it can report wait
// vs service time. Layers that sleep report here; the accounting costs one
// thread-local load when no scope is bound.

/// Reports `us` of virtual wait to the scope bound on this thread, if any.
void note_virtual_wait_us(std::uint64_t us);
inline void note_virtual_wait_ms(double ms) {
  note_virtual_wait_us(static_cast<std::uint64_t>(ms * 1000.0));
}

/// RAII: collects note_virtual_wait_us() calls made on this thread for the
/// scope's lifetime. Scopes nest; the innermost wins (waits are charged to
/// the nearest collector, which is always the stage being dispatched).
class VirtualWaitScope {
 public:
  VirtualWaitScope();
  ~VirtualWaitScope();
  VirtualWaitScope(const VirtualWaitScope&) = delete;
  VirtualWaitScope& operator=(const VirtualWaitScope&) = delete;

  std::uint64_t waited_us() const { return waited_us_; }
  double waited_ms() const { return static_cast<double>(waited_us_) / 1000.0; }

 private:
  friend void note_virtual_wait_us(std::uint64_t);
  std::uint64_t waited_us_ = 0;
  VirtualWaitScope* prev_ = nullptr;
};

}  // namespace revelio::common

#include "common/event_loop.hpp"

#include <algorithm>

namespace revelio::common {

bool EventLoop::later(const Event& a, const Event& b) {
  if (a.due_us != b.due_us) return a.due_us > b.due_us;
  if (a.track != b.track) return a.track > b.track;
  return a.seq > b.seq;
}

std::uint64_t EventLoop::schedule_at(Micros due_us, std::size_t track,
                                     std::uint64_t payload) {
  Event e;
  e.due_us = std::max(due_us, now_us_);
  e.track = track;
  e.seq = next_seq_++;
  e.id = next_id_++;
  e.payload = payload;
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), later);
  live_.insert(e.id);
  ++pending_;
  ++stats_.scheduled;
  stats_.peak_pending = std::max(stats_.peak_pending, pending_);
  return e.id;
}

std::uint64_t EventLoop::schedule_after(Micros delay_us, std::size_t track,
                                        std::uint64_t payload) {
  return schedule_at(now_us_ + delay_us, track, payload);
}

bool EventLoop::cancel(std::uint64_t id) {
  // Only ids that are still parked are cancellable: fired, unknown, and
  // doubly-cancelled ids all report false.
  if (live_.erase(id) == 0) return false;
  cancelled_.insert(id);
  // The heap slot stays until it surfaces; only the live count drops now.
  --pending_;
  ++stats_.cancelled;
  return true;
}

void EventLoop::next_batch(std::vector<Event>& out) {
  out.clear();
  // Skim cancelled tombstones off the top first so the batch instant is
  // the earliest *live* due time.
  while (!heap_.empty() && cancelled_.count(heap_.front().id) > 0) {
    cancelled_.erase(heap_.front().id);
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  }
  if (heap_.empty()) return;

  const Micros due = heap_.front().due_us;
  now_us_ = due;
  while (!heap_.empty() && heap_.front().due_us == due) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Event e = heap_.back();
    heap_.pop_back();
    if (cancelled_.count(e.id) > 0) {
      cancelled_.erase(e.id);
      continue;
    }
    live_.erase(e.id);
    --pending_;
    out.push_back(e);
  }
  stats_.dispatched += out.size();
  stats_.batches += out.empty() ? 0 : 1;
  stats_.max_batch = std::max(stats_.max_batch, out.size());
  if (!out.empty()) stats_.end_us = due;
}

std::vector<EventLoop::Event> EventLoop::next_batch() {
  std::vector<Event> out;
  next_batch(out);
  return out;
}

void EventLoop::run_serial(
    const std::function<void(const Event&, Micros)>& fn) {
  std::vector<Event> batch;
  for (;;) {
    next_batch(batch);
    if (batch.empty()) return;
    for (const Event& e : batch) fn(e, now_us_);
  }
}

// ---------------------------------------------------------------------------

namespace {
thread_local VirtualWaitScope* g_wait_scope = nullptr;
}  // namespace

void note_virtual_wait_us(std::uint64_t us) {
  if (g_wait_scope != nullptr) g_wait_scope->waited_us_ += us;
}

VirtualWaitScope::VirtualWaitScope() : prev_(g_wait_scope) {
  g_wait_scope = this;
}

VirtualWaitScope::~VirtualWaitScope() { g_wait_scope = prev_; }

}  // namespace revelio::common

// Fork-join thread pool with a deterministic parallel_for and a task-queue
// mode for independent long-running tasks (the attestation gateway's
// concurrent sessions).
//
// The bulk-data paths (Merkle builds, dm-verity verify_all, format-time leaf
// hashing) are embarrassingly parallel: every output slot depends only on its
// own input range. parallel_for exploits that while keeping the repo's
// determinism guarantee intact:
//
//  - Static chunking: the split of [0, n) into chunks depends only on `n`,
//    the grain size and the pool width — never on timing.
//  - Disjoint outputs: the body writes only to slots inside its [begin, end)
//    range, so the result is byte-identical to running the chunks
//    sequentially in any order (the tier-2 equivalence suite asserts this).
//  - No shared mutable state beyond what the callee makes thread-safe:
//    MetricsRegistry counters are atomic and safe; the tracer and SimClock
//    are per-thread (see obs/trace.hpp, common/sim_clock.hpp), so a worker
//    that has not bound them sees a disabled tracer and a null clock.
//
// for_tasks is the task-queue mode: each index is claimed dynamically by the
// next free lane, so long, *uneven* tasks (whole client sessions) do not
// convoy behind static chunk boundaries. Outputs must still be disjoint per
// index; the claiming order is timing-dependent but the result is not.
//
// Pool width comes from REVELIO_THREADS if set, else hardware_concurrency.
// A width of 1 (or small n) degrades to a plain inline loop, which keeps
// single-core containers and ASan/TSan runs cheap.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace revelio::common {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller participates as the last
  /// lane). `threads == 0` means default_thread_count().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (workers + the calling thread).
  unsigned width() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs body(begin, end) over a static partition of [0, n). Blocks until
  /// every chunk finished. The body must not throw and must only write to
  /// output slots inside its own range. `min_grain` is the smallest chunk
  /// worth shipping to a worker; below `2 * min_grain` total the loop runs
  /// inline on the caller.
  ///
  /// Thread-safety: safe to call from any thread, including from inside a
  /// body already running on this pool. The pool runs one fan-out at a
  /// time; a caller that finds the pool busy runs its loop inline (same
  /// result — outputs are disjoint — just without extra lanes).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t min_grain = 1);

  /// Task-queue mode: runs task(i) once for every i in [0, n), each index
  /// claimed dynamically (chunk size 1) by the next idle lane. Blocks until
  /// all tasks finished. Use for independent, potentially long and uneven
  /// tasks — e.g. one full client session per index. Tasks must not throw
  /// and must only write to per-index state; they may block (condition
  /// variables, single-flight waits) as long as the wait is resolved by
  /// another *running* task, never by a task that has not been claimed yet.
  ///
  /// Thread-safety: same policy as parallel_for — concurrent or nested
  /// callers degrade to an inline loop.
  void for_tasks(std::size_t n, const std::function<void(std::size_t)>& task);

  /// REVELIO_THREADS env override, else std::thread::hardware_concurrency().
  static unsigned default_thread_count();

  /// Lazily-created process-wide pool used by the crypto/storage bulk paths.
  /// Never run whole sessions on it — give long-lived task sets their own
  /// pool so bulk ops inside a session still find this one (mostly) free.
  static ThreadPool& global();

 private:
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t n = 0;
    std::size_t chunk = 0;        // chunk size (last chunk may be short)
    std::size_t chunk_count = 0;
    std::size_t next = 0;         // next chunk index to claim
    std::size_t done = 0;         // chunks completed
    std::uint64_t generation = 0;
  };

  void worker_loop();
  /// Claims and runs chunks of the current job until none remain.
  void drain_current_job(std::unique_lock<std::mutex>& lock);
  /// Publishes one job (pre-chunked) and joins it; inline fallback when a
  /// job is already in flight.
  void run_job(std::size_t n, std::size_t chunk, std::size_t chunk_count,
               const std::function<void(std::size_t, std::size_t)>& body);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait here for a new job
  std::condition_variable done_cv_;  // the caller waits here for the join
  Job job_;
  bool busy_ = false;  // a fan-out is in flight (owner still joining)
  bool shutdown_ = false;
};

/// Lane id of the calling thread: pool workers carry a process-globally
/// unique 1-based id assigned at spawn; every non-pool thread (including
/// the caller participating in a fan-out) reports 0. The tracer uses this
/// to render pool work as parallel lanes in the Chrome trace export.
unsigned current_lane();

/// Convenience wrapper over ThreadPool::global().
inline void parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_grain = 1) {
  ThreadPool::global().parallel_for(n, body, min_grain);
}

}  // namespace revelio::common

// Fork-join thread pool with a deterministic parallel_for.
//
// The bulk-data paths (Merkle builds, dm-verity verify_all, format-time leaf
// hashing) are embarrassingly parallel: every output slot depends only on its
// own input range. parallel_for exploits that while keeping the repo's
// determinism guarantee intact:
//
//  - Static chunking: the split of [0, n) into chunks depends only on `n`,
//    the grain size and the pool width — never on timing.
//  - Disjoint outputs: the body writes only to slots inside its [begin, end)
//    range, so the result is byte-identical to running the chunks
//    sequentially in any order (the tier-2 equivalence suite asserts this).
//  - No shared mutable state: bodies must not touch the tracer or the log
//    sink (single-threaded by design; see obs/trace.hpp). MetricsRegistry
//    counters are atomic and therefore safe, but the convention is to
//    aggregate in the caller after the join instead.
//
// Pool width comes from REVELIO_THREADS if set, else hardware_concurrency.
// A width of 1 (or small n) degrades to a plain inline loop, which keeps
// single-core containers and ASan/TSan runs cheap.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace revelio::common {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller participates as the last
  /// lane). `threads == 0` means default_thread_count().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (workers + the calling thread).
  unsigned width() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs body(begin, end) over a static partition of [0, n). Blocks until
  /// every chunk finished. The body must not throw and must only write to
  /// output slots inside its own range. `min_grain` is the smallest chunk
  /// worth shipping to a worker; below `2 * min_grain` total the loop runs
  /// inline on the caller.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t min_grain = 1);

  /// REVELIO_THREADS env override, else std::thread::hardware_concurrency().
  static unsigned default_thread_count();

  /// Lazily-created process-wide pool used by the crypto/storage bulk paths.
  static ThreadPool& global();

 private:
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t n = 0;
    std::size_t chunk = 0;        // chunk size (last chunk may be short)
    std::size_t chunk_count = 0;
    std::size_t next = 0;         // next chunk index to claim
    std::size_t done = 0;         // chunks completed
    std::uint64_t generation = 0;
  };

  void worker_loop();
  /// Claims and runs chunks of the current job until none remain.
  void drain_current_job(std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait here for a new job
  std::condition_variable done_cv_;  // the caller waits here for the join
  Job job_;
  bool shutdown_ = false;
};

/// Convenience wrapper over ThreadPool::global().
inline void parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_grain = 1) {
  ThreadPool::global().parallel_for(n, body, min_grain);
}

}  // namespace revelio::common

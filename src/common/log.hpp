// Minimal leveled logger. Examples turn it up; tests and benches keep it
// quiet. Not thread-safe beyond what stdio gives — the simulation is
// single-threaded by design (deterministic replay).
#pragma once

#include <string>

namespace revelio {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, const std::string& component,
         const std::string& message);

inline void log_debug(const std::string& c, const std::string& m) {
  log(LogLevel::kDebug, c, m);
}
inline void log_info(const std::string& c, const std::string& m) {
  log(LogLevel::kInfo, c, m);
}
inline void log_warn(const std::string& c, const std::string& m) {
  log(LogLevel::kWarn, c, m);
}
inline void log_error(const std::string& c, const std::string& m) {
  log(LogLevel::kError, c, m);
}

}  // namespace revelio

// Minimal leveled logger with a pluggable sink. Examples turn it up; tests
// and benches keep it quiet. Not thread-safe beyond what stdio gives — the
// simulation is single-threaded by design (deterministic replay).
//
// The sink indirection exists for two consumers: tests capture log lines
// through a LogBuffer instead of scraping stderr, and the tracing layer
// (obs::Tracer::set_log_spans) emits span begin/end debug lines that
// interleave with ordinary logs, correlating the two streams via span ids.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace revelio {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Fixed-width upper-case level tag ("DEBUG", "INFO ", ...).
const char* log_level_name(LogLevel level);

/// Receives every record that passes the level filter.
using LogSink =
    std::function<void(LogLevel level, const std::string& component,
                       const std::string& message)>;

/// Replaces the output sink; an empty sink restores the default
/// (one "[LEVEL] component message" line to stderr per record).
void set_log_sink(LogSink sink);

void log(LogLevel level, const std::string& component,
         const std::string& message);

inline void log_debug(const std::string& c, const std::string& m) {
  log(LogLevel::kDebug, c, m);
}
inline void log_info(const std::string& c, const std::string& m) {
  log(LogLevel::kInfo, c, m);
}
inline void log_warn(const std::string& c, const std::string& m) {
  log(LogLevel::kWarn, c, m);
}
inline void log_error(const std::string& c, const std::string& m) {
  log(LogLevel::kError, c, m);
}

/// Bounded ring of rendered log lines, installable as the sink. Tests do:
///
///   LogBuffer capture;
///   capture.install();        // sink now appends to the ring
///   ... exercise code ...
///   EXPECT_TRUE(capture.contains("span#1 begin"));
///
/// The destructor uninstalls automatically if still installed.
class LogBuffer {
 public:
  explicit LogBuffer(std::size_t capacity = 256) : capacity_(capacity) {}
  ~LogBuffer() { uninstall(); }

  LogBuffer(const LogBuffer&) = delete;
  LogBuffer& operator=(const LogBuffer&) = delete;

  void install();
  /// Restores the default stderr sink (only if this buffer is installed).
  void uninstall();

  std::vector<std::string> lines() const {
    return {lines_.begin(), lines_.end()};
  }
  bool contains(std::string_view needle) const;
  void clear_lines() { lines_.clear(); }

 private:
  std::size_t capacity_;
  std::deque<std::string> lines_;
  bool installed_ = false;
};

}  // namespace revelio

#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace revelio::common {

namespace {
// Pool workers get globally-unique 1-based lane ids at spawn; 0 is every
// other thread. Global (not per-pool) so two pools' lanes stay distinct
// in a merged trace.
std::atomic<unsigned> next_lane_id{1};
thread_local unsigned this_lane = 0;
}  // namespace

unsigned current_lane() { return this_lane; }

unsigned ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("REVELIO_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1 && v <= 256) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads - 1);
  for (unsigned i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain_current_job(std::unique_lock<std::mutex>& lock) {
  const std::uint64_t generation = job_.generation;
  while (job_.generation == generation && job_.next < job_.chunk_count) {
    const std::size_t c = job_.next++;
    const std::size_t begin = c * job_.chunk;
    const std::size_t end = std::min(begin + job_.chunk, job_.n);
    const auto* body = job_.body;
    lock.unlock();
    (*body)(begin, end);
    lock.lock();
    if (job_.generation == generation && ++job_.done == job_.chunk_count) {
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  this_lane = next_lane_id.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return shutdown_ || (job_.body != nullptr && job_.next < job_.chunk_count);
    });
    if (shutdown_) return;
    drain_current_job(lock);
  }
}

void ThreadPool::run_job(
    std::size_t n, std::size_t chunk, std::size_t chunk_count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  std::unique_lock<std::mutex> lock(mu_);
  if (busy_) {
    // A fan-out is already in flight (a concurrent caller, or a body on
    // this very pool fanning out again). Fall back to the sequential loop:
    // outputs are disjoint per range, so the result is identical.
    lock.unlock();
    body(0, n);
    return;
  }
  busy_ = true;
  job_.body = &body;
  job_.n = n;
  job_.chunk = chunk;
  job_.chunk_count = chunk_count;
  job_.next = 0;
  job_.done = 0;
  ++job_.generation;
  work_cv_.notify_all();
  // The caller is a lane too: claim chunks until none remain, then wait for
  // stragglers still running on workers.
  drain_current_job(lock);
  done_cv_.wait(lock, [this] { return job_.done == job_.chunk_count; });
  job_.body = nullptr;
  busy_ = false;
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_grain) {
  if (n == 0) return;
  if (min_grain == 0) min_grain = 1;
  const std::size_t lanes = width();
  // Inline when there is nothing to fan out to, or the work is too small to
  // be worth a wake-up. The cutover depends only on n / min_grain / width,
  // never on timing, so the chunk layout is reproducible.
  if (lanes == 1 || n < 2 * min_grain) {
    body(0, n);
    return;
  }
  const std::size_t max_chunks = std::min<std::size_t>(lanes, n / min_grain);
  const std::size_t chunk = (n + max_chunks - 1) / max_chunks;
  const std::size_t chunk_count = (n + chunk - 1) / chunk;
  run_job(n, chunk, chunk_count, body);
}

void ThreadPool::for_tasks(std::size_t n,
                           const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  const std::function<void(std::size_t, std::size_t)> body =
      [&task](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) task(i);
      };
  if (width() == 1 || n == 1) {
    body(0, n);
    return;
  }
  // Chunk size 1: every index is its own unit of claim, so a slow task
  // never holds indices hostage behind a static chunk boundary.
  run_job(n, /*chunk=*/1, /*chunk_count=*/n, body);
}

}  // namespace revelio::common

// Deterministic random number generation.
//
// Reproducibility (requirement F5 in the paper) extends to our simulation:
// every stochastic choice flows through a seeded generator so that a run is
// bit-reproducible. Cryptographic key generation uses crypto::HmacDrbg
// seeded from one of these, mirroring how a real guest seeds its DRBG from
// hardware entropy.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace revelio {

/// xoshiro256** — fast, high-quality, deterministic PRNG for simulation
/// choices (latencies, jitter, workload generation). Not used directly for
/// key material; see crypto::HmacDrbg.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Fills `n` random bytes.
  Bytes next_bytes(std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace revelio

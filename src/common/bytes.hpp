// Byte-buffer utilities shared by every Revelio module.
//
// All binary data in the code base flows through `Bytes` (an owning buffer)
// and `ByteView` (a non-owning view). Helpers here cover concatenation,
// constant-time comparison, and big-endian integer packing — the small
// vocabulary needed by the crypto, storage and protocol layers.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace revelio {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Builds an owning buffer from a view.
inline Bytes to_bytes(ByteView v) { return Bytes(v.begin(), v.end()); }

/// Builds an owning buffer from the raw bytes of a string.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Interprets a byte buffer as text (caller asserts it is printable).
inline std::string to_string(ByteView v) {
  return std::string(v.begin(), v.end());
}

/// Appends `src` to `dst`.
inline void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

inline void append(Bytes& dst, std::string_view src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

inline void append_u8(Bytes& dst, std::uint8_t v) { dst.push_back(v); }

/// Appends a 32-bit integer big-endian.
inline void append_u32be(Bytes& dst, std::uint32_t v) {
  dst.push_back(static_cast<std::uint8_t>(v >> 24));
  dst.push_back(static_cast<std::uint8_t>(v >> 16));
  dst.push_back(static_cast<std::uint8_t>(v >> 8));
  dst.push_back(static_cast<std::uint8_t>(v));
}

/// Appends a 64-bit integer big-endian.
inline void append_u64be(Bytes& dst, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    dst.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

/// Reads a 32-bit big-endian integer at `off` (caller checks bounds).
inline std::uint32_t read_u32be(ByteView v, std::size_t off) {
  return (static_cast<std::uint32_t>(v[off]) << 24) |
         (static_cast<std::uint32_t>(v[off + 1]) << 16) |
         (static_cast<std::uint32_t>(v[off + 2]) << 8) |
         static_cast<std::uint32_t>(v[off + 3]);
}

/// Reads a 64-bit big-endian integer at `off` (caller checks bounds).
inline std::uint64_t read_u64be(ByteView v, std::size_t off) {
  std::uint64_t r = 0;
  for (std::size_t i = 0; i < 8; ++i) r = (r << 8) | v[off + i];
  return r;
}

/// Concatenates any number of views into one buffer.
template <typename... Views>
Bytes concat(const Views&... views) {
  Bytes out;
  (append(out, views), ...);
  return out;
}

/// Constant-time equality; the comparison cost does not depend on where the
/// buffers first differ. Used for MAC and measurement comparisons.
inline bool ct_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

/// XORs `b` into `a` elementwise over the common prefix.
inline void xor_into(std::span<std::uint8_t> a, ByteView b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) a[i] ^= b[i];
}

/// Fixed-size byte array with value semantics; used for digests and keys.
template <std::size_t N>
struct FixedBytes {
  std::array<std::uint8_t, N> data{};

  static constexpr std::size_t size() { return N; }
  std::uint8_t* begin() { return data.data(); }
  std::uint8_t* end() { return data.data() + N; }
  const std::uint8_t* begin() const { return data.data(); }
  const std::uint8_t* end() const { return data.data() + N; }
  std::uint8_t& operator[](std::size_t i) { return data[i]; }
  const std::uint8_t& operator[](std::size_t i) const { return data[i]; }

  ByteView view() const { return ByteView(data.data(), N); }
  operator ByteView() const { return view(); }
  Bytes bytes() const { return Bytes(data.begin(), data.end()); }

  static FixedBytes from(ByteView v) {
    FixedBytes out;
    const std::size_t n = std::min(N, v.size());
    std::copy_n(v.begin(), n, out.data.begin());
    return out;
  }

  friend bool operator==(const FixedBytes& a, const FixedBytes& b) {
    return ct_equal(a.view(), b.view());
  }
  friend bool operator!=(const FixedBytes& a, const FixedBytes& b) {
    return !(a == b);
  }
  friend auto operator<=>(const FixedBytes& a, const FixedBytes& b) {
    return a.data <=> b.data;
  }
};

}  // namespace revelio

// Single-flight request coalescing.
//
// When N concurrent callers need the same expensive, idempotent result
// (the gateway's sessions all fetching the VCEK chain for the same
// (chip id, TCB)), exactly one caller — the leader — executes the fetch;
// the rest block until it completes and receive a copy of the same
// Result. This turns a thundering herd of identical KDS round trips into
// one fetch plus N-1 cheap waits.
//
// Failure semantics: the leader's error is delivered to every coalesced
// waiter of that flight and nothing is cached here — the next caller
// starts a fresh flight. Retries therefore stay where they belong, inside
// the leader's fetch function (net::with_retries), and are never
// multiplied by the number of waiters. A leader that *throws* is handled
// the same way: the in-flight entry is published as a
// "singleflight.leader_failed" error (waking every waiter) before the
// exception propagates to the leader's caller, so a throwing fetch can
// never strand waiters on a flight that will not complete.
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>

#include "common/result.hpp"

namespace revelio::common {

/// Coalesces concurrent run() calls with equal keys into one execution.
///
/// Thread-safety: fully thread-safe; that is its purpose. The flight map
/// mutex is never held while `fn` runs. `Value` must be copyable (every
/// waiter gets a copy). Key needs operator<.
template <typename Key, typename Value>
class SingleFlight {
 public:
  /// Runs `fn` if no flight for `key` is in progress (the caller becomes
  /// the leader), otherwise blocks until the leader finishes and returns a
  /// copy of its result. `coalesced`, when non-null, is set to true iff
  /// this call waited on another caller's flight.
  ///
  /// `fn` must not re-enter run() with the same key on the same thread
  /// (self-deadlock), and a waiting caller must always be matched by a
  /// *running* leader — guaranteed here because the flight is created by
  /// the leader itself immediately before it runs `fn`.
  template <typename Fn>
  Result<Value> run(const Key& key, bool* coalesced, Fn&& fn) {
    if (coalesced != nullptr) *coalesced = false;
    std::shared_ptr<Flight> flight;
    {
      std::unique_lock<std::mutex> lock(mu_);
      const auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        // Follower: wait for the leader's result.
        flight = it->second;
        cv_.wait(lock, [&flight] { return flight->done; });
        if (coalesced != nullptr) *coalesced = true;
        return flight->result;
      }
      flight = std::make_shared<Flight>();
      inflight_[key] = flight;
    }
    // Leader: execute outside the lock, publish, wake the waiters. The
    // publish must happen even if `fn` throws — otherwise every waiter
    // blocks forever on a flight that will never complete.
    Result<Value> result = Error::make("singleflight.leader_failed",
                                       "leader threw before producing");
    try {
      result = fn();
    } catch (...) {
      publish(key, flight, result);
      throw;  // the leader's caller sees the original exception
    }
    publish(key, flight, result);
    return result;
  }

  /// Flights currently in progress (tests).
  std::size_t inflight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return inflight_.size();
  }

 private:
  struct Flight {
    bool done = false;
    Result<Value> result = Error::make("singleflight.pending");
  };

  void publish(const Key& key, const std::shared_ptr<Flight>& flight,
               const Result<Value>& result) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      flight->result = result;
      flight->done = true;
      inflight_.erase(key);
    }
    cv_.notify_all();
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Key, std::shared_ptr<Flight>> inflight_;
};

}  // namespace revelio::common

#include "common/log.hpp"

#include <cstdio>

namespace revelio {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log(LogLevel level, const std::string& component,
         const std::string& message) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] %-14s %s\n", level_name(level),
               component.c_str(), message.c_str());
}

}  // namespace revelio

#include "common/log.hpp"

#include <cstdio>

namespace revelio {

namespace {
LogLevel g_level = LogLevel::kWarn;
LogSink g_sink;          // empty = default stderr sink
const void* g_sink_owner = nullptr;  // LogBuffer that installed g_sink
}  // namespace

const char* log_level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void set_log_sink(LogSink sink) {
  g_sink = std::move(sink);
  g_sink_owner = nullptr;
}

void log(LogLevel level, const std::string& component,
         const std::string& message) {
  if (level < g_level) return;
  if (g_sink) {
    g_sink(level, component, message);
    return;
  }
  std::fprintf(stderr, "[%s] %-14s %s\n", log_level_name(level),
               component.c_str(), message.c_str());
}

void LogBuffer::install() {
  g_sink = [this](LogLevel level, const std::string& component,
                  const std::string& message) {
    std::string line = std::string("[") + log_level_name(level) + "] " +
                       component + " " + message;
    lines_.push_back(std::move(line));
    if (lines_.size() > capacity_) lines_.pop_front();
  };
  g_sink_owner = this;
  installed_ = true;
}

void LogBuffer::uninstall() {
  if (!installed_) return;
  installed_ = false;
  // Only tear down the global sink if nobody re-installed over us.
  if (g_sink_owner == this) {
    g_sink = nullptr;
    g_sink_owner = nullptr;
  }
}

bool LogBuffer::contains(std::string_view needle) const {
  for (const auto& line : lines_) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace revelio

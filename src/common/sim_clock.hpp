// Simulated wall clock.
//
// The paper's client-side numbers (Table 3) are dominated by network round
// trips we cannot reproduce on one machine, so the network fabric charges
// latency against a virtual clock. Components that do real computational
// work (hashing, AES, ECDSA) additionally take real time, which the
// benchmarks measure directly.
#pragma once

#include <cstdint>
#include <string>

namespace revelio {

/// Microsecond-resolution virtual time.
///
/// Thread-safety: a SimClock instance is NOT thread-safe — it belongs to
/// one simulated world, and a world is driven by one thread at a time.
/// The current() registry is per-thread (thread_local), so concurrent
/// session worlds on different gateway workers never observe each other's
/// clocks. A clock must be constructed and destroyed on the same thread;
/// to drive a world built on another thread, bind its clock with
/// ScopedClockCurrent for the duration of the work.
class SimClock {
 public:
  using Micros = std::uint64_t;

  SimClock();
  SimClock(const SimClock& other);
  SimClock& operator=(const SimClock&) = default;
  ~SimClock();

  /// The most recently registered clock on *this thread*, or nullptr. Each
  /// simulated world builds exactly one clock, so "latest wins" names it
  /// deterministically; the tracing layer (src/obs) reads virtual
  /// timestamps through this without threading a clock reference through
  /// every instrumented call site. Destroying a copy re-registers the
  /// previously registered clock, so a short-lived copy never leaves
  /// current() null (or dangling) while the original is still alive.
  static const SimClock* current();

  Micros now_us() const { return now_us_; }
  double now_ms() const { return static_cast<double>(now_us_) / 1000.0; }

  /// Advances virtual time; used by the network fabric and device models to
  /// charge latency for operations whose real cost is not reproducible here.
  void advance_us(Micros us) { now_us_ += us; }
  void advance_ms(double ms) {
    now_us_ += static_cast<Micros>(ms * 1000.0);
  }

  void reset() { now_us_ = 0; }

  /// RFC3339-ish rendering for logs and certificate validity fields.
  std::string to_string() const;

 private:
  friend class ScopedClockCurrent;
  /// Raw per-thread registry hooks used by construction/destruction and by
  /// ScopedClockCurrent.
  static void register_on_this_thread(const SimClock* clock);
  static void unregister_on_this_thread(const SimClock* clock);

  Micros now_us_ = 0;
};

/// RAII: makes `clock` this thread's SimClock::current() for the scope.
/// This is how a gateway worker driving a world that was *built on another
/// thread* (construction auto-registers only on the constructing thread)
/// exposes that world's virtual clock to the tracing/metrics layer. The
/// referenced clock must outlive the scope; scopes nest (latest wins).
class ScopedClockCurrent {
 public:
  explicit ScopedClockCurrent(const SimClock& clock) : clock_(&clock) {
    SimClock::register_on_this_thread(clock_);
  }
  ~ScopedClockCurrent() { SimClock::unregister_on_this_thread(clock_); }

  ScopedClockCurrent(const ScopedClockCurrent&) = delete;
  ScopedClockCurrent& operator=(const ScopedClockCurrent&) = delete;

 private:
  const SimClock* clock_;
};

}  // namespace revelio

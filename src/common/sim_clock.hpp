// Simulated wall clock.
//
// The paper's client-side numbers (Table 3) are dominated by network round
// trips we cannot reproduce on one machine, so the network fabric charges
// latency against a virtual clock. Components that do real computational
// work (hashing, AES, ECDSA) additionally take real time, which the
// benchmarks measure directly.
#pragma once

#include <cstdint>
#include <string>

namespace revelio {

/// Microsecond-resolution virtual time.
class SimClock {
 public:
  using Micros = std::uint64_t;

  SimClock();
  SimClock(const SimClock& other);
  SimClock& operator=(const SimClock&) = default;
  ~SimClock();

  /// The most recently constructed clock still alive, or nullptr. Each
  /// simulated world builds exactly one clock, so "latest wins" names it
  /// deterministically; the tracing layer (src/obs) reads virtual
  /// timestamps through this without threading a clock reference through
  /// every instrumented call site. Destroying a copy re-registers the
  /// previously registered clock, so a short-lived copy never leaves
  /// current() null (or dangling) while the original is still alive.
  static const SimClock* current();

  Micros now_us() const { return now_us_; }
  double now_ms() const { return static_cast<double>(now_us_) / 1000.0; }

  /// Advances virtual time; used by the network fabric and device models to
  /// charge latency for operations whose real cost is not reproducible here.
  void advance_us(Micros us) { now_us_ += us; }
  void advance_ms(double ms) {
    now_us_ += static_cast<Micros>(ms * 1000.0);
  }

  void reset() { now_us_ = 0; }

  /// RFC3339-ish rendering for logs and certificate validity fields.
  std::string to_string() const;

 private:
  Micros now_us_ = 0;
};

}  // namespace revelio

#include "common/sim_clock.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace revelio {
namespace {
// Registration order of every clock registered on this thread; current()
// is the back. The registry is thread_local: each gateway worker sees only
// the clocks of the world it is currently driving, so concurrent session
// worlds never race on (or mis-resolve) current(). Destroying a clock
// erases exactly that entry, so a temporary copy dying re-exposes
// whichever clock was registered before it instead of leaving nullptr (or
// a dangling pointer) behind.
std::vector<const SimClock*>& clock_registry() {
  thread_local std::vector<const SimClock*> registry;
  return registry;
}
}  // namespace

void SimClock::register_on_this_thread(const SimClock* clock) {
  clock_registry().push_back(clock);
}

void SimClock::unregister_on_this_thread(const SimClock* clock) {
  auto& registry = clock_registry();
  // Erase the most recent matching entry (scopes nest LIFO; a plain erase
  // of *all* entries would break nested ScopedClockCurrent of one clock).
  const auto it = std::find(registry.rbegin(), registry.rend(), clock);
  if (it != registry.rend()) registry.erase(std::next(it).base());
}

SimClock::SimClock() { register_on_this_thread(this); }

SimClock::SimClock(const SimClock& other) : now_us_(other.now_us_) {
  register_on_this_thread(this);
}

SimClock::~SimClock() { unregister_on_this_thread(this); }

const SimClock* SimClock::current() {
  const auto& registry = clock_registry();
  return registry.empty() ? nullptr : registry.back();
}

std::string SimClock::to_string() const {
  const std::uint64_t total_ms = now_us_ / 1000;
  const std::uint64_t ms = total_ms % 1000;
  const std::uint64_t total_s = total_ms / 1000;
  const std::uint64_t s = total_s % 60;
  const std::uint64_t m = (total_s / 60) % 60;
  const std::uint64_t h = total_s / 3600;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "T+%02llu:%02llu:%02llu.%03llu",
                static_cast<unsigned long long>(h),
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(s),
                static_cast<unsigned long long>(ms));
  return buf;
}

}  // namespace revelio

#include "common/sim_clock.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace revelio {
namespace {
// Registration order of every live clock; current() is the back. Destroying
// a clock erases exactly that entry, so a temporary copy dying re-exposes
// whichever clock was registered before it instead of leaving nullptr (or a
// dangling pointer) behind.
std::vector<const SimClock*>& clock_registry() {
  static std::vector<const SimClock*> registry;
  return registry;
}
}  // namespace

SimClock::SimClock() { clock_registry().push_back(this); }

SimClock::SimClock(const SimClock& other) : now_us_(other.now_us_) {
  clock_registry().push_back(this);
}

SimClock::~SimClock() {
  auto& registry = clock_registry();
  registry.erase(std::remove(registry.begin(), registry.end(), this),
                 registry.end());
}

const SimClock* SimClock::current() {
  const auto& registry = clock_registry();
  return registry.empty() ? nullptr : registry.back();
}

std::string SimClock::to_string() const {
  const std::uint64_t total_ms = now_us_ / 1000;
  const std::uint64_t ms = total_ms % 1000;
  const std::uint64_t total_s = total_ms / 1000;
  const std::uint64_t s = total_s % 60;
  const std::uint64_t m = (total_s / 60) % 60;
  const std::uint64_t h = total_s / 3600;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "T+%02llu:%02llu:%02llu.%03llu",
                static_cast<unsigned long long>(h),
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(s),
                static_cast<unsigned long long>(ms));
  return buf;
}

}  // namespace revelio

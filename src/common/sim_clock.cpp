#include "common/sim_clock.hpp"

#include <cstdio>

namespace revelio {
namespace {
const SimClock* g_current_clock = nullptr;
}  // namespace

SimClock::SimClock() { g_current_clock = this; }

SimClock::SimClock(const SimClock& other) : now_us_(other.now_us_) {
  g_current_clock = this;
}

SimClock::~SimClock() {
  if (g_current_clock == this) g_current_clock = nullptr;
}

const SimClock* SimClock::current() { return g_current_clock; }

std::string SimClock::to_string() const {
  const std::uint64_t total_ms = now_us_ / 1000;
  const std::uint64_t ms = total_ms % 1000;
  const std::uint64_t total_s = total_ms / 1000;
  const std::uint64_t s = total_s % 60;
  const std::uint64_t m = (total_s / 60) % 60;
  const std::uint64_t h = total_s / 3600;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "T+%02llu:%02llu:%02llu.%03llu",
                static_cast<unsigned long long>(h),
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(s),
                static_cast<unsigned long long>(ms));
  return buf;
}

}  // namespace revelio

// Hex encoding/decoding for digests, keys and identifiers.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace revelio {

/// Lower-case hex encoding.
std::string to_hex(ByteView data);

/// Decodes a hex string (upper or lower case). Returns nullopt on bad input.
std::optional<Bytes> from_hex(std::string_view hex);

}  // namespace revelio

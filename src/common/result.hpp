// Lightweight expected-style result type (std::expected is C++23; we target
// C++20). Protocol and I/O layers return Result<T> so callers must handle
// failure explicitly; crypto primitives with no failure mode return values
// directly.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace revelio {

/// Error with a stable machine-readable code and a human-readable detail.
struct Error {
  std::string code;    // e.g. "verity.block_mismatch"
  std::string detail;  // free-form context

  static Error make(std::string code, std::string detail = {}) {
    return Error{std::move(code), std::move(detail)};
  }
  std::string to_string() const {
    return detail.empty() ? code : code + ": " + detail;
  }

  /// Error taxonomy for resilience policies (net/resilience.hpp): transient
  /// errors are transport-level losses that a retry, failover or backoff
  /// may cure — a dropped message, an endpoint in a blackhole window, a
  /// replica that is down. Everything else is permanent: in particular
  /// every *verification* failure (bad signature, wrong measurement, TLS
  /// binding mismatch) is a fail-closed verdict that must NEVER be
  /// retried — retrying an attacker-induced failure just hands the
  /// attacker more attempts.
  bool is_transient() const {
    // store.io_transient is a recoverable I/O hiccup (retry is safe and
    // idempotent: the frame either landed or it didn't, and recovery
    // truncates a torn tail). store.corrupt and store.manifest_mismatch
    // are NOT here by design: they mean the durable state failed its
    // integrity checks, and retrying cannot make corrupt bytes honest.
    return code == "net.timeout" || code == "net.drop" ||
           code == "net.unreachable" || code == "net.connection_refused" ||
           code == "acme.unavailable" || code == "store.io_transient";
  }
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}           // NOLINT(implicit)
  Result(Error error) : value_(std::move(error)) {}       // NOLINT(implicit)

  bool ok() const { return std::holds_alternative<T>(value_); }
  explicit operator bool() const { return ok(); }

  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(value_);
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(value_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> value_;
};

/// Result specialisation for operations that return no payload.
template <>
class Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT

  static Result success() { return Result(); }

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    assert(failed_);
    return error_;
  }

 private:
  Error error_{};
  bool failed_ = false;
};

using Status = Result<void>;

}  // namespace revelio

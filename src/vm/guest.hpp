// Guest VM runtime: the measured init flow.
//
// After the firmware has verified the boot blobs (§2.1.2), the guest init
// process — whose logic lives in the measured initrd — brings the system
// up (§5.2): map the rootfs through dm-verity with the root hash from the
// kernel command line, verify it, unlock (or first-boot format) the
// encrypted data volume with the measurement-derived sealing key, apply
// the firewall posture and start the services. Each phase is timed; the
// Table 1 benchmark reads the resulting BootReport.
#pragma once

#include <memory>
#include <optional>

#include "common/sim_clock.hpp"
#include "sevsnp/guest_channel.hpp"
#include "storage/dm_crypt.hpp"
#include "storage/dm_verity.hpp"
#include "storage/imagefs.hpp"
#include "storage/mem_disk.hpp"
#include "vm/blobs.hpp"
#include "vm/firmware.hpp"

namespace revelio::vm {

struct BootPhase {
  std::string name;
  double real_ms = 0.0;  // measured wall time of actual work done here
  double sim_ms = 0.0;   // charged to the simulated clock
};

/// One runtime-measurement event: what was extended into which RTMR. The
/// guest publishes its event log; verifiers replay it (sevsnp::replay_rtmr)
/// and compare against the RTMR values in the signed report.
struct MeasurementEvent {
  std::size_t rtmr_index = 0;
  std::string description;       // e.g. "service:nginx"
  sevsnp::Measurement digest;    // SHA-384 of the measured content
};

struct BootReport {
  std::vector<BootPhase> phases;
  bool first_boot = false;

  double total_sim_ms() const {
    double total = 0.0;
    for (const auto& phase : phases) total += phase.sim_ms;
    return total;
  }
  const BootPhase* find(const std::string& name) const {
    for (const auto& phase : phases) {
      if (phase.name == name) return &phase;
    }
    return nullptr;
  }
};

class GuestVm {
 public:
  GuestVm(sevsnp::AmdSp& sp, SimClock& clock, KernelSpec kernel,
          InitrdSpec initrd, KernelCmdline cmdline,
          std::shared_ptr<storage::MemDisk> disk);

  /// Runs the init sequence; fails if any integrity step fails.
  Result<BootReport> boot();

  bool booted() const { return booted_; }
  const KernelSpec& kernel() const { return kernel_; }
  const InitrdSpec& initrd() const { return initrd_; }
  const sevsnp::Measurement& measurement() const { return measurement_; }
  SimClock& clock() { return *clock_; }

  /// Mounted (verity-protected) root filesystem. Only valid after boot().
  const storage::MountedFs& rootfs() const { return *rootfs_; }

  /// Decrypted data volume (sealing-key protected). Only after boot() and
  /// only when the initrd configured dm-crypt.
  std::shared_ptr<storage::BlockDevice> data_volume() { return data_volume_; }

  /// Guest side of the AMD-SP channel. Only valid after boot().
  sevsnp::GuestChannel& channel() { return *channel_; }

  /// Firewall check applied to inbound connections (§5.1.3).
  bool inbound_allowed(std::uint16_t port) const;

  /// Runtime-measurement event log (vTPM-style extension): every service
  /// started after boot is measured into RTMR0; applications may extend
  /// further events via extend_runtime_measurement.
  const std::vector<MeasurementEvent>& event_log() const {
    return event_log_;
  }

  /// Measures an application event into an RTMR and records it in the log.
  Status extend_runtime_measurement(std::size_t rtmr_index,
                                    const std::string& description,
                                    ByteView content);

 private:
  Status setup_verity(BootReport& report);
  Status setup_crypt(BootReport& report);
  Status start_services(BootReport& report);

  sevsnp::AmdSp* sp_;
  SimClock* clock_;
  KernelSpec kernel_;
  InitrdSpec initrd_;
  KernelCmdline cmdline_;
  std::shared_ptr<storage::MemDisk> disk_;
  sevsnp::Measurement measurement_;

  bool booted_ = false;
  std::optional<sevsnp::GuestChannel> channel_;
  std::shared_ptr<storage::VerityDevice> verity_dev_;
  std::optional<storage::MountedFs> rootfs_;
  std::shared_ptr<storage::BlockDevice> data_volume_;
  std::vector<MeasurementEvent> event_log_;
};

}  // namespace revelio::vm

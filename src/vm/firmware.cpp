#include "vm/firmware.hpp"

#include "obs/metrics.hpp"

namespace revelio::vm {

FirmwareHashTable FirmwareHashTable::over(ByteView kernel, ByteView initrd,
                                          ByteView cmdline) {
  FirmwareHashTable table;
  table.kernel_hash = crypto::sha256(kernel);
  table.initrd_hash = crypto::sha256(initrd);
  table.cmdline_hash = crypto::sha256(cmdline);
  return table;
}

Bytes Firmware::serialize() const {
  Bytes out;
  append(out, std::string_view("ROVMF1"));
  append_u32be(out, static_cast<std::uint32_t>(vendor.size()));
  append(out, vendor);
  append_u8(out, verify_hash_table ? 1 : 0);
  append(out, table.kernel_hash.view());
  append(out, table.initrd_hash.view());
  append(out, table.cmdline_hash.view());
  return out;
}

Result<Firmware> Firmware::parse(ByteView data) {
  if (data.size() < 6 || to_string(data.subspan(0, 6)) != "ROVMF1") {
    return Error::make("vm.bad_firmware_blob");
  }
  std::size_t off = 6;
  if (off + 4 > data.size()) return Error::make("vm.bad_firmware_blob");
  const std::uint32_t vendor_len = read_u32be(data, off);
  off += 4;
  if (off + vendor_len + 1 + 96 > data.size()) {
    return Error::make("vm.bad_firmware_blob", "truncated");
  }
  Firmware fw;
  fw.vendor = to_string(data.subspan(off, vendor_len));
  off += vendor_len;
  fw.verify_hash_table = data[off++] != 0;
  fw.table.kernel_hash = crypto::Digest32::from(data.subspan(off, 32));
  off += 32;
  fw.table.initrd_hash = crypto::Digest32::from(data.subspan(off, 32));
  off += 32;
  fw.table.cmdline_hash = crypto::Digest32::from(data.subspan(off, 32));
  return fw;
}

Status Firmware::verify_blobs(ByteView kernel, ByteView initrd,
                              ByteView cmdline) const {
  if (!verify_hash_table) return Status::success();  // malicious firmware
  auto fail = [](const char* blob) {
    obs::metrics()
        .counter("vm.firmware_check.fail.count", {{"blob", blob}})
        .inc();
    return Error::make("vm.hash_mismatch", blob);
  };
  if (!(crypto::sha256(kernel) == table.kernel_hash)) {
    return fail("kernel");
  }
  if (!(crypto::sha256(initrd) == table.initrd_hash)) {
    return fail("initrd");
  }
  if (!(crypto::sha256(cmdline) == table.cmdline_hash)) {
    return fail("cmdline");
  }
  obs::metrics().counter("vm.firmware_check.ok.count").inc();
  return Status::success();
}

}  // namespace revelio::vm

// Virtual firmware (OVMF) model with the measured-direct-boot hash table.
//
// §2.1.2: the (patched) OVMF reserves a table for the hashes of kernel,
// initrd and command line. QEMU fills the table while loading the guest;
// the whole firmware — table included — is what the AMD-SP measures. At
// boot the firmware re-hashes each blob the hypervisor actually handed
// over and refuses to boot on any mismatch. A firmware that skips that
// check is expressible here (`verify_hash_table = false`) — and carries a
// different measurement, which is the point.
#pragma once

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/sha2.hpp"

namespace revelio::vm {

struct FirmwareHashTable {
  crypto::Digest32 kernel_hash;
  crypto::Digest32 initrd_hash;
  crypto::Digest32 cmdline_hash;

  static FirmwareHashTable over(ByteView kernel, ByteView initrd,
                                ByteView cmdline);
  friend bool operator==(const FirmwareHashTable&,
                         const FirmwareHashTable&) = default;
};

struct Firmware {
  std::string vendor = "OVMF-SNP-2023.05";
  bool verify_hash_table = true;
  FirmwareHashTable table;

  Bytes serialize() const;
  static Result<Firmware> parse(ByteView data);

  /// The boot-time check: do the blobs the hypervisor supplied match the
  /// measured table? (No-op for a malicious firmware built with
  /// verify_hash_table=false — its different measurement exposes it.)
  Status verify_blobs(ByteView kernel, ByteView initrd,
                      ByteView cmdline) const;
};

}  // namespace revelio::vm

#include "vm/guest.hpp"

#include <chrono>

#include "common/hex.hpp"
#include "storage/partition.hpp"

namespace revelio::vm {

namespace {

/// Times a phase: real wall time of the work plus an explicit simulated
/// charge. Real work (hashing, PBKDF2, key generation) is charged to the
/// simulated clock at face value so sim totals stay meaningful.
class PhaseTimer {
 public:
  PhaseTimer(BootReport& report, SimClock& clock, std::string name)
      : report_(&report), clock_(&clock), name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}

  ~PhaseTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const double real_ms =
        std::chrono::duration<double, std::milli>(elapsed).count();
    clock_->advance_ms(real_ms + extra_sim_ms_);
    report_->phases.push_back(
        BootPhase{name_, real_ms, real_ms + extra_sim_ms_});
  }

  /// Adds simulated-only cost (e.g. a daemon's startup time).
  void charge_sim_ms(double ms) { extra_sim_ms_ += ms; }

 private:
  BootReport* report_;
  SimClock* clock_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  double extra_sim_ms_ = 0.0;
};

}  // namespace

GuestVm::GuestVm(sevsnp::AmdSp& sp, SimClock& clock, KernelSpec kernel,
                 InitrdSpec initrd, KernelCmdline cmdline,
                 std::shared_ptr<storage::MemDisk> disk)
    : sp_(&sp),
      clock_(&clock),
      kernel_(std::move(kernel)),
      initrd_(std::move(initrd)),
      cmdline_(std::move(cmdline)),
      disk_(std::move(disk)) {
  if (auto m = sp_->measurement()) measurement_ = *m;
}

Status GuestVm::setup_verity(BootReport& report) {
  auto rootfs_part = storage::PartitionTable::open(disk_, cmdline_.root_partition);
  if (!rootfs_part.ok()) return rootfs_part.error();

  if (!initrd_.setup_verity || !kernel_.enforce_verity) {
    // Insecure configuration: mount the raw partition. Expressible, and
    // visibly different in the measurement.
    auto mounted = storage::MountedFs::mount(*rootfs_part);
    if (!mounted.ok()) return mounted.error();
    rootfs_ = std::move(*mounted);
    return Status::success();
  }

  if (cmdline_.verity_root_hash_hex.empty()) {
    return Error::make("vm.boot_failed",
                       "verity requested but no root hash on cmdline");
  }
  const auto root_bytes = from_hex(cmdline_.verity_root_hash_hex);
  if (!root_bytes || root_bytes->size() != 32) {
    return Error::make("vm.boot_failed", "malformed verity root hash");
  }
  const auto expected_root = crypto::Digest32::from(*root_bytes);

  auto hash_part =
      storage::PartitionTable::open(disk_, cmdline_.verity_hash_partition);
  if (!hash_part.ok()) return hash_part.error();

  // veritysetup open: load + validate the tree against the cmdline root.
  {
    PhaseTimer timer(report, *clock_, "dm-verity setup");
    auto dev = storage::Verity::open(*rootfs_part, *hash_part, expected_root);
    if (!dev.ok()) {
      return Error::make("vm.boot_failed",
                         "verity open: " + dev.error().to_string());
    }
    verity_dev_ = std::move(*dev);
  }
  // Full verification pass before mounting (the boot service the paper
  // times at 4.7 s / 3.3 s in Table 1).
  {
    PhaseTimer timer(report, *clock_, "dm-verity verify");
    if (auto st = verity_dev_->verify_all(); !st.ok()) {
      return Error::make("vm.boot_failed",
                         "rootfs verification: " + st.error().to_string());
    }
  }
  auto mounted = storage::MountedFs::mount(verity_dev_);
  if (!mounted.ok()) return mounted.error();
  rootfs_ = std::move(*mounted);
  return Status::success();
}

Status GuestVm::setup_crypt(BootReport& report) {
  if (!initrd_.setup_crypt) return Status::success();
  if (!kernel_.sev_snp_enabled) {
    return Error::make("vm.boot_failed",
                       "crypt setup requires the SNP guest channel");
  }
  auto data_part = storage::PartitionTable::open(disk_, cmdline_.data_partition);
  if (!data_part.ok()) return data_part.error();

  // Sealing key: measurement-bound, fetched over the protected channel.
  sevsnp::KeyDerivationPolicy policy;
  policy.mix_measurement = true;
  policy.context = "revelio-disk-encryption";
  auto sealing_key = channel_->request_key(policy, 32);
  if (!sealing_key.ok()) return sealing_key.error();

  PhaseTimer timer(report, *clock_, "dm-crypt setup");
  if (storage::CryptVolume::is_formatted(**data_part)) {
    auto dev = storage::CryptVolume::open(*data_part, *sealing_key);
    if (!dev.ok()) {
      return Error::make("vm.boot_failed",
                         "crypt open: " + dev.error().to_string());
    }
    data_volume_ = std::move(*dev);
  } else {
    report.first_boot = true;
    // Salt must be deterministic per measurement for reproducibility; bind
    // it to the measurement rather than wall-clock entropy.
    sevsnp::KeyDerivationPolicy salt_policy;
    salt_policy.mix_measurement = true;
    salt_policy.context = "revelio-disk-salt";
    auto salt = channel_->request_key(salt_policy, 32);
    if (!salt.ok()) return salt.error();
    auto dev = storage::CryptVolume::format(*data_part, *sealing_key, *salt);
    if (!dev.ok()) {
      return Error::make("vm.boot_failed",
                         "crypt format: " + dev.error().to_string());
    }
    data_volume_ = std::move(*dev);
    // First-boot wipe: overwrite the whole volume through the cipher so no
    // stale plaintext survives and the on-disk state is fully encrypted.
    // This is the size-dependent part of the paper's encryption service
    // (611/481 ms for an 84 MB volume, Table 1).
    const Bytes zero_block(data_volume_->block_size(), 0);
    for (std::uint64_t i = 0; i < data_volume_->block_count(); ++i) {
      if (auto st = data_volume_->write_block(i, zero_block); !st.ok()) {
        return st;
      }
    }
  }
  return Status::success();
}

Status GuestVm::start_services(BootReport& report) {
  for (const auto& service : initrd_.services) {
    PhaseTimer timer(report, *clock_, "service:" + service.name);
    if (!service.binary_path.empty() && !rootfs_->exists(service.binary_path)) {
      return Error::make("vm.boot_failed",
                         "service binary missing: " + service.binary_path);
    }
    // Runtime monitoring: measure each started service (name + binary
    // content) into RTMR0 so the report reflects what actually launched.
    if (kernel_.sev_snp_enabled && !service.binary_path.empty()) {
      auto binary = rootfs_->read_file(service.binary_path);
      if (!binary.ok()) return binary.error();
      const Bytes content = concat(service.name, *binary);
      if (auto st = extend_runtime_measurement(0, "service:" + service.name,
                                               content);
          !st.ok()) {
        return st;
      }
    }
    timer.charge_sim_ms(service.startup_ms);
  }
  return Status::success();
}

Status GuestVm::extend_runtime_measurement(std::size_t rtmr_index,
                                           const std::string& description,
                                           ByteView content) {
  if (!channel_) {
    return Error::make("vm.no_channel",
                       "runtime measurement requires the SNP channel");
  }
  const sevsnp::Measurement digest = crypto::sha384(content);
  if (auto st = channel_->extend_rtmr(rtmr_index, digest); !st.ok()) {
    return st;
  }
  event_log_.push_back(MeasurementEvent{rtmr_index, description, digest});
  return Status::success();
}

Result<BootReport> GuestVm::boot() {
  BootReport report;
  if (booted_) return Error::make("vm.already_booted");

  // Open the guest <-> AMD-SP channel first; crypt setup needs it.
  if (kernel_.sev_snp_enabled) {
    auto channel = sevsnp::GuestChannel::open(*sp_);
    if (!channel.ok()) return channel.error();
    channel_.emplace(std::move(*channel));
  }

  if (auto st = setup_verity(report); !st.ok()) return st.error();
  if (auto st = setup_crypt(report); !st.ok()) return st.error();
  if (auto st = start_services(report); !st.ok()) return st.error();

  booted_ = true;
  return report;
}

bool GuestVm::inbound_allowed(std::uint16_t port) const {
  if (!initrd_.block_inbound_network) return true;
  const std::string port_str = std::to_string(port);
  for (const auto& allowed : initrd_.allowed_inbound_ports) {
    if (allowed == port_str) return true;
  }
  return false;
}

}  // namespace revelio::vm

// Hypervisor (QEMU model) — explicitly untrusted.
//
// The hypervisor assembles the guest: it fills the firmware's hash table
// with the hashes of kernel/initrd/cmdline (fw_cfg in the real patches),
// feeds the firmware to the AMD-SP for measurement, and then boots. Being
// the adversary's vantage point, it also exposes every §6.1 attack as a
// launch knob: swap blobs after hashing, inject a forged table, replace
// the firmware with one that skips verification.
#pragma once

#include <memory>

#include "sevsnp/amd_sp.hpp"
#include "vm/firmware.hpp"
#include "vm/guest.hpp"

namespace revelio::vm {

struct LaunchConfig {
  Bytes kernel_blob;
  Bytes initrd_blob;
  std::string cmdline;
  std::shared_ptr<storage::MemDisk> disk;
  std::uint64_t guest_policy = 0x30000;

  // ---- Attack knobs (all default to honest behaviour) ----------------
  /// 6.1.1: measure these hashes instead of the real blobs' hashes.
  std::optional<FirmwareHashTable> forged_hash_table;
  /// 6.1.1: after measurement, boot with these blobs instead.
  std::optional<Bytes> swap_kernel_after_measure;
  std::optional<Bytes> swap_initrd_after_measure;
  std::optional<std::string> swap_cmdline_after_measure;
  /// 6.1.1: replace OVMF with a firmware that skips hash verification.
  bool use_malicious_firmware = false;
};

class Hypervisor {
 public:
  Hypervisor(sevsnp::AmdSp& sp, SimClock& clock) : sp_(&sp), clock_(&clock) {}

  /// Launches a guest: measures the firmware, runs the firmware's blob
  /// verification, and constructs (but does not boot) the GuestVm.
  Result<std::unique_ptr<GuestVm>> launch(const LaunchConfig& config);

  /// The firmware bytes an honest launch of these blobs would measure —
  /// what a verifier reconstructs from sources (reference firmware +
  /// published blob hashes).
  static Bytes reference_firmware(ByteView kernel, ByteView initrd,
                                  std::string_view cmdline);

  /// The launch measurement an honest launch would produce; verifiers
  /// compare attestation reports against this.
  static sevsnp::Measurement expected_measurement(ByteView kernel,
                                                  ByteView initrd,
                                                  std::string_view cmdline);

 private:
  sevsnp::AmdSp* sp_;
  SimClock* clock_;
};

}  // namespace revelio::vm

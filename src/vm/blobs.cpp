#include "vm/blobs.hpp"

#include <sstream>

namespace revelio::vm {

namespace {

void append_string(Bytes& out, const std::string& s) {
  append_u32be(out, static_cast<std::uint32_t>(s.size()));
  append(out, s);
}

struct Reader {
  ByteView data;
  std::size_t off = 0;
  bool failed = false;

  std::uint32_t u32() {
    if (off + 4 > data.size()) {
      failed = true;
      return 0;
    }
    const std::uint32_t v = read_u32be(data, off);
    off += 4;
    return v;
  }
  std::uint64_t u64() {
    if (off + 8 > data.size()) {
      failed = true;
      return 0;
    }
    const std::uint64_t v = read_u64be(data, off);
    off += 8;
    return v;
  }
  std::uint8_t u8() {
    if (off + 1 > data.size()) {
      failed = true;
      return 0;
    }
    return data[off++];
  }
  std::string str() {
    const std::uint32_t len = u32();
    if (failed || off + len > data.size()) {
      failed = true;
      return {};
    }
    std::string s(data.begin() + static_cast<std::ptrdiff_t>(off),
                  data.begin() + static_cast<std::ptrdiff_t>(off + len));
    off += len;
    return s;
  }
};

}  // namespace

Bytes KernelSpec::serialize() const {
  Bytes out;
  append(out, std::string_view("RKRN1"));
  append_string(out, version);
  append_u8(out, enforce_verity ? 1 : 0);
  append_u8(out, sev_snp_enabled ? 1 : 0);
  return out;
}

Result<KernelSpec> KernelSpec::parse(ByteView data) {
  if (data.size() < 5 || to_string(data.subspan(0, 5)) != "RKRN1") {
    return Error::make("vm.bad_kernel_blob");
  }
  Reader r{data, 5};
  KernelSpec spec;
  spec.version = r.str();
  spec.enforce_verity = r.u8() != 0;
  spec.sev_snp_enabled = r.u8() != 0;
  if (r.failed) return Error::make("vm.bad_kernel_blob", "truncated");
  return spec;
}

Bytes InitrdSpec::serialize() const {
  Bytes out;
  append(out, std::string_view("RIRD1"));
  append_u8(out, setup_verity ? 1 : 0);
  append_u8(out, setup_crypt ? 1 : 0);
  append_u8(out, block_inbound_network ? 1 : 0);
  append_u32be(out, static_cast<std::uint32_t>(allowed_inbound_ports.size()));
  for (const auto& port : allowed_inbound_ports) append_string(out, port);
  append_u32be(out, static_cast<std::uint32_t>(services.size()));
  for (const auto& service : services) {
    append_string(out, service.name);
    append_string(out, service.binary_path);
    append_u64be(out, static_cast<std::uint64_t>(service.startup_ms * 1000.0));
  }
  return out;
}

Result<InitrdSpec> InitrdSpec::parse(ByteView data) {
  if (data.size() < 5 || to_string(data.subspan(0, 5)) != "RIRD1") {
    return Error::make("vm.bad_initrd_blob");
  }
  Reader r{data, 5};
  InitrdSpec spec;
  spec.setup_verity = r.u8() != 0;
  spec.setup_crypt = r.u8() != 0;
  spec.block_inbound_network = r.u8() != 0;
  const std::uint32_t port_count = r.u32();
  if (port_count > 1024) return Error::make("vm.bad_initrd_blob", "ports");
  spec.allowed_inbound_ports.clear();
  for (std::uint32_t i = 0; i < port_count && !r.failed; ++i) {
    spec.allowed_inbound_ports.push_back(r.str());
  }
  const std::uint32_t service_count = r.u32();
  if (service_count > 4096) {
    return Error::make("vm.bad_initrd_blob", "services");
  }
  for (std::uint32_t i = 0; i < service_count && !r.failed; ++i) {
    ServiceSpec service;
    service.name = r.str();
    service.binary_path = r.str();
    service.startup_ms = static_cast<double>(r.u64()) / 1000.0;
    spec.services.push_back(std::move(service));
  }
  if (r.failed) return Error::make("vm.bad_initrd_blob", "truncated");
  return spec;
}

std::string KernelCmdline::to_string() const {
  std::ostringstream out;
  out << "root=PART=" << root_partition;
  if (!verity_root_hash_hex.empty()) {
    out << " verity.hashdev=PART=" << verity_hash_partition
        << " verity.roothash=" << verity_root_hash_hex;
  }
  out << " data=PART=" << data_partition;
  for (const auto& [k, v] : extra) out << " " << k << "=" << v;
  return out.str();
}

Result<KernelCmdline> KernelCmdline::parse(std::string_view text) {
  KernelCmdline cmdline;
  cmdline.root_partition.clear();
  cmdline.verity_hash_partition.clear();
  cmdline.data_partition.clear();
  std::istringstream in{std::string(text)};
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      return Error::make("vm.bad_cmdline", token);
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    auto strip_part = [](const std::string& v) {
      return v.rfind("PART=", 0) == 0 ? v.substr(5) : v;
    };
    if (key == "root") {
      cmdline.root_partition = strip_part(value);
    } else if (key == "verity.hashdev") {
      cmdline.verity_hash_partition = strip_part(value);
    } else if (key == "verity.roothash") {
      cmdline.verity_root_hash_hex = value;
    } else if (key == "data") {
      cmdline.data_partition = strip_part(value);
    } else {
      cmdline.extra[key] = value;
    }
  }
  if (cmdline.root_partition.empty()) {
    return Error::make("vm.bad_cmdline", "missing root=");
  }
  return cmdline;
}

}  // namespace revelio::vm

// Guest boot blobs: kernel, initrd and kernel command line.
//
// In the simulation these are structured descriptions of *behaviour* —
// whether the kernel enforces verity, which services the initrd starts,
// what the firewall allows — serialized to canonical bytes. The bytes are
// what gets hashed into the measured-boot chain, so a behavioural change
// (say, a kernel that skips rootfs verification) necessarily changes the
// measurement, exactly the property the paper's trust argument rests on.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/sha2.hpp"

namespace revelio::vm {

/// Kernel behaviour switches (the SEV-SNP-enlightened guest kernel).
struct KernelSpec {
  std::string version = "5.17.0-rc6-snp";
  bool enforce_verity = true;   // honour verity failures (abort reads)
  bool sev_snp_enabled = true;  // guest talks to the AMD-SP

  Bytes serialize() const;
  static Result<KernelSpec> parse(ByteView data);
  friend bool operator==(const KernelSpec&, const KernelSpec&) = default;
};

/// One service the init system starts, with its startup cost. The cost
/// models the daemon's real initialisation (paper: the Boundary Node's many
/// services account for its 22.7 s boot).
struct ServiceSpec {
  std::string name;
  std::string binary_path;  // must exist in the rootfs
  double startup_ms = 100.0;

  friend bool operator==(const ServiceSpec&, const ServiceSpec&) = default;
};

/// Initrd contents: early-boot logic configuration.
struct InitrdSpec {
  bool setup_verity = true;        // map rootfs through dm-verity
  bool setup_crypt = true;         // unlock/format the data volume
  bool block_inbound_network = true;  // §5.1.3 firewall posture
  std::vector<std::string> allowed_inbound_ports;  // e.g. "443"
  std::vector<ServiceSpec> services;

  Bytes serialize() const;
  static Result<InitrdSpec> parse(ByteView data);
  friend bool operator==(const InitrdSpec&, const InitrdSpec&) = default;
};

/// Kernel command line; carries the verity root hash (§5.1.2).
struct KernelCmdline {
  std::string root_partition = "rootfs";
  std::string verity_hash_partition = "verity";
  std::string verity_root_hash_hex;  // empty => verity disabled
  std::string data_partition = "data";
  std::map<std::string, std::string> extra;

  std::string to_string() const;
  static Result<KernelCmdline> parse(std::string_view text);
  Bytes serialize() const { return to_bytes(to_string()); }
};

}  // namespace revelio::vm

#include "vm/hypervisor.hpp"

namespace revelio::vm {

Bytes Hypervisor::reference_firmware(ByteView kernel, ByteView initrd,
                                     std::string_view cmdline) {
  Firmware fw;
  fw.table = FirmwareHashTable::over(kernel, initrd, to_bytes(cmdline));
  return fw.serialize();
}

sevsnp::Measurement Hypervisor::expected_measurement(
    ByteView kernel, ByteView initrd, std::string_view cmdline) {
  // Mirrors AmdSp's launch framing for a single firmware blob.
  const Bytes fw = reference_firmware(kernel, initrd, cmdline);
  crypto::Sha384 digest;
  Bytes framed;
  append_u64be(framed, fw.size());
  digest.update(framed);
  digest.update(fw);
  return digest.finish();
}

Result<std::unique_ptr<GuestVm>> Hypervisor::launch(
    const LaunchConfig& config) {
  // 1. Build the firmware image with the hash table (fw_cfg injection).
  Firmware fw;
  if (config.use_malicious_firmware) {
    fw.vendor = "OVMF-PATCHED-NOVERIFY";
    fw.verify_hash_table = false;
  }
  fw.table = config.forged_hash_table
                 ? *config.forged_hash_table
                 : FirmwareHashTable::over(config.kernel_blob,
                                           config.initrd_blob,
                                           to_bytes(config.cmdline));
  const Bytes fw_bytes = fw.serialize();

  // 2. AMD-SP measures the firmware (and only the firmware — everything
  // else is covered transitively via the hash table).
  if (auto st = sp_->launch_start(config.guest_policy); !st.ok()) return st.error();
  if (auto st = sp_->launch_update(fw_bytes); !st.ok()) {
    sp_->launch_reset();
    return st.error();
  }
  auto measurement = sp_->launch_finish();
  if (!measurement.ok()) {
    sp_->launch_reset();
    return measurement.error();
  }

  // 3. The hypervisor may now swap blobs (the attack surface the hash
  // table exists to close).
  const Bytes& kernel = config.swap_kernel_after_measure
                            ? *config.swap_kernel_after_measure
                            : config.kernel_blob;
  const Bytes& initrd = config.swap_initrd_after_measure
                            ? *config.swap_initrd_after_measure
                            : config.initrd_blob;
  const std::string cmdline = config.swap_cmdline_after_measure
                                  ? *config.swap_cmdline_after_measure
                                  : config.cmdline;

  // 4. Firmware boots: verifies each received blob against the table.
  if (auto st = fw.verify_blobs(kernel, initrd, to_bytes(cmdline));
      !st.ok()) {
    sp_->launch_reset();
    return Error::make("vm.boot_refused",
                       "firmware hash check: " + st.error().to_string());
  }

  // 5. Hand over to the guest kernel/initrd.
  auto kernel_spec = KernelSpec::parse(kernel);
  if (!kernel_spec.ok()) {
    sp_->launch_reset();
    return kernel_spec.error();
  }
  auto initrd_spec = InitrdSpec::parse(initrd);
  if (!initrd_spec.ok()) {
    sp_->launch_reset();
    return initrd_spec.error();
  }
  auto parsed_cmdline = KernelCmdline::parse(cmdline);
  if (!parsed_cmdline.ok()) {
    sp_->launch_reset();
    return parsed_cmdline.error();
  }
  return std::make_unique<GuestVm>(*sp_, *clock_, std::move(*kernel_spec),
                                   std::move(*initrd_spec),
                                   std::move(*parsed_cmdline), config.disk);
}

}  // namespace revelio::vm

#include "store/storage_env.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace revelio::store {

namespace {
Error crashed_error() {
  return Error::make("store.io_crashed", "storage env hit its crash point");
}
}  // namespace

// ---------------------------------------------------------------------------
// MemStorageEnv

class MemStorageEnv::MemFile : public StorageFile {
 public:
  MemFile(MemStorageEnv* env, std::string name) : env_(env), name_(std::move(name)) {}

  Status append(ByteView data) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (env_->crashed_) return crashed_error();
    return env_->append_locked(env_->files_[name_], data);
  }

  Status sync() override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (env_->crashed_) return crashed_error();
    auto& fs = env_->files_[name_];
    if (env_->plan_.drop_sync) return Status::success();  // the lying fsync
    revelio::append(fs.durable, fs.tail);
    fs.tail.clear();
    fs.dup_tail_armed = false;
    return Status::success();
  }

  uint64_t size() const override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    auto it = env_->files_.find(name_);
    if (it == env_->files_.end()) return 0;
    return it->second.durable.size() + it->second.tail.size();
  }

 private:
  MemStorageEnv* env_;
  std::string name_;
};

Status MemStorageEnv::append_locked(FileState& fs, ByteView data) {
  if (plan_.fail_appends > 0) {
    --plan_.fail_appends;
    return Error::make("store.io_transient", "injected transient write error");
  }
  size_t apply = data.size();
  bool crosses = false;
  if (plan_.crash_at_bytes >= 0) {
    const uint64_t budget = static_cast<uint64_t>(plan_.crash_at_bytes);
    if (bytes_appended_ + data.size() > budget) {
      apply = budget > bytes_appended_
                  ? static_cast<size_t>(budget - bytes_appended_)
                  : 0;
      crosses = true;
    }
  }
  revelio::append(fs.tail, data.first(apply));
  fs.last_block = to_bytes(data.first(apply));
  fs.dup_tail_armed = plan_.duplicate_tail && apply > 0;
  bytes_appended_ += apply;
  if (crosses) {
    crashed_ = true;
    return crashed_error();
  }
  return Status::success();
}

Result<std::unique_ptr<StorageFile>> MemStorageEnv::open_append(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return crashed_error();
  files_.try_emplace(name);
  return std::unique_ptr<StorageFile>(new MemFile(this, name));
}

Result<Bytes> MemStorageEnv::read_file(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Error::make("store.io_transient", "no such file: " + name);
  }
  Bytes out = it->second.durable;
  revelio::append(out, it->second.tail);
  return out;
}

Status MemStorageEnv::write_file_atomic(const std::string& name,
                                        ByteView data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return crashed_error();
  // The rename makes this all-or-nothing: either the whole new content is
  // durable or the old content survives. A crash budget that fires inside
  // the tmp-file write therefore leaves the target untouched.
  if (plan_.crash_at_bytes >= 0 &&
      bytes_appended_ + data.size() >
          static_cast<uint64_t>(plan_.crash_at_bytes)) {
    bytes_appended_ = static_cast<uint64_t>(plan_.crash_at_bytes);
    crashed_ = true;
    return crashed_error();
  }
  bytes_appended_ += data.size();
  auto& fs = files_[name];
  fs.durable = to_bytes(data);
  fs.tail.clear();
  fs.dup_tail_armed = false;
  return Status::success();
}

Status MemStorageEnv::remove_file(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return crashed_error();
  files_.erase(name);
  return Status::success();
}

Result<std::vector<std::string>> MemStorageEnv::list_files() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, _] : files_) names.push_back(name);
  return names;
}

bool MemStorageEnv::exists(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(name) != 0;
}

void MemStorageEnv::set_fault_plan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
}

void MemStorageEnv::crash_and_recover() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, fs] : files_) {
    fs.tail.clear();
    if (fs.dup_tail_armed) {
      // The controller replays the last block after what was already
      // durable — the duplicated-tail anomaly.
      revelio::append(fs.durable, fs.last_block);
      revelio::append(fs.durable, fs.last_block);
      fs.dup_tail_armed = false;
    }
    fs.last_block.clear();
  }
  plan_ = FaultPlan{};
  crashed_ = false;
}

bool MemStorageEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

bool MemStorageEnv::corrupt_durable_byte(const std::string& name,
                                         size_t offset, uint8_t xor_mask) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end() || offset >= it->second.durable.size()) return false;
  it->second.durable[offset] ^= xor_mask;
  return true;
}

uint64_t MemStorageEnv::bytes_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_appended_;
}

// ---------------------------------------------------------------------------
// RealStorageEnv

namespace {

class PosixFile : public StorageFile {
 public:
  PosixFile(int fd, uint64_t size) : fd_(fd), size_(size) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status append(ByteView data) override {
    const uint8_t* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Error::make("store.io_transient",
                           std::string("write: ") + std::strerror(errno));
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    size_ += data.size();
    return Status::success();
  }

  Status sync() override {
    if (::fsync(fd_) != 0) {
      return Error::make("store.io_transient",
                         std::string("fsync: ") + std::strerror(errno));
    }
    return Status::success();
  }

  uint64_t size() const override { return size_; }

 private:
  int fd_;
  uint64_t size_;
};

Status sync_dir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Error::make("store.io_transient",
                       "open dir " + dir + ": " + std::strerror(errno));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Error::make("store.io_transient",
                       "fsync dir " + dir + ": " + std::strerror(errno));
  }
  return Status::success();
}

}  // namespace

Result<std::unique_ptr<RealStorageEnv>> RealStorageEnv::open(
    const std::string& root) {
  if (::mkdir(root.c_str(), 0755) != 0 && errno != EEXIST) {
    return Error::make("store.io_transient",
                       "mkdir " + root + ": " + std::strerror(errno));
  }
  return std::unique_ptr<RealStorageEnv>(new RealStorageEnv(root));
}

Result<std::unique_ptr<StorageFile>> RealStorageEnv::open_append(
    const std::string& name) {
  int fd = ::open(path(name).c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) {
    return Error::make("store.io_transient",
                       "open " + name + ": " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Error::make("store.io_transient",
                       "fstat " + name + ": " + std::strerror(errno));
  }
  return std::unique_ptr<StorageFile>(
      new PosixFile(fd, static_cast<uint64_t>(st.st_size)));
}

Result<Bytes> RealStorageEnv::read_file(const std::string& name) {
  int fd = ::open(path(name).c_str(), O_RDONLY);
  if (fd < 0) {
    return Error::make("store.io_transient",
                       "open " + name + ": " + std::strerror(errno));
  }
  Bytes out;
  uint8_t buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Error::make("store.io_transient",
                         "read " + name + ": " + std::strerror(errno));
    }
    if (n == 0) break;
    revelio::append(out, ByteView(buf, static_cast<size_t>(n)));
  }
  ::close(fd);
  return out;
}

Status RealStorageEnv::write_file_atomic(const std::string& name,
                                         ByteView data) {
  const std::string tmp = path(name) + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Error::make("store.io_transient",
                       "open " + tmp + ": " + std::strerror(errno));
  }
  const uint8_t* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Error::make("store.io_transient",
                         "write " + tmp + ": " + std::strerror(errno));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Error::make("store.io_transient",
                       "fsync " + tmp + ": " + std::strerror(errno));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path(name).c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Error::make("store.io_transient",
                       "rename " + name + ": " + std::strerror(errno));
  }
  return sync_dir(root_);
}

Status RealStorageEnv::remove_file(const std::string& name) {
  if (::unlink(path(name).c_str()) != 0 && errno != ENOENT) {
    return Error::make("store.io_transient",
                       "unlink " + name + ": " + std::strerror(errno));
  }
  return sync_dir(root_);
}

Result<std::vector<std::string>> RealStorageEnv::list_files() {
  DIR* dir = ::opendir(root_.c_str());
  if (dir == nullptr) {
    return Error::make("store.io_transient",
                       "opendir " + root_ + ": " + std::strerror(errno));
  }
  std::vector<std::string> names;
  while (struct dirent* ent = ::readdir(dir)) {
    std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") continue;
    names.push_back(std::move(name));
  }
  ::closedir(dir);
  return names;
}

bool RealStorageEnv::exists(const std::string& name) {
  struct stat st{};
  return ::stat(path(name).c_str(), &st) == 0;
}

}  // namespace revelio::store

// Append-only, log-structured KV engine: the durable state tier behind the
// gateway's trust caches, the attestation audit chain, and the revocation
// set (ROADMAP item 1).
//
// On-disk layout (all through a StorageEnv):
//
//   MANIFEST        "RVKVMAN1" | u64be generation | u32be crc32c
//                   — written atomically; the generation is the commit
//                   point for compaction.
//   snap-<gen>      "RVKVSNP1" | u32be crc32c(body) | body
//                   body = u32be count | count * (u32be klen | key |
//                                                 u32be vlen | val)
//   wal-<gen>       sequence of frames:
//                   u32be len | u32be crc32c(payload) | payload
//                   payload = u8 op (1 put, 2 erase) | u32be klen | key |
//                             [u32be vlen | val]   (put only)
//
// Durability contract: `put`/`erase` return success only after the frame
// is appended AND the fsync barrier completed (sync_on_put, the default).
// An acked write therefore lives in the durable prefix of the WAL and
// survives any crash; an unacked write may be torn off the tail.
//
// Recovery (open):
//   - missing MANIFEST with data files present        -> store.manifest_mismatch
//   - MANIFEST magic/CRC mismatch                     -> store.manifest_mismatch
//   - snapshot CRC mismatch                           -> store.corrupt
//   - WAL: replay frames in order. On the first bad frame (short header,
//     short body, CRC or parse failure) scan the remaining bytes: if any
//     complete valid frame exists beyond it, the damage is *inside* the
//     log (bit rot, reordering) and the store fails closed with
//     store.corrupt; if not, the bad bytes are a torn tail from a crash —
//     truncate there and recover. This distinction is what lets the crash
//     matrix demand "reopen succeeds" for every kill point while a single
//     flipped byte mid-log still fails closed.
//   - files from other generations (a compaction that crashed before or
//     after its manifest commit) are deleted during recovery.
//
// Concurrency: one mutex around everything. The store sits behind caches
// that already shard and coalesce; the durable tier's cost is fsync, not
// lock contention.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "store/storage_env.hpp"

namespace revelio::store {

struct KvStoreOptions {
  bool sync_on_put = true;  // fsync barrier before acking each mutation
  // Compact when the live WAL outgrows this (0 = never automatically).
  uint64_t compact_threshold_bytes = 4ull << 20;
};

/// What recovery found while opening the store.
struct RecoveryInfo {
  uint64_t generation = 0;
  size_t snapshot_keys = 0;
  size_t wal_frames_replayed = 0;
  size_t wal_bytes_truncated = 0;  // torn tail dropped during replay
  bool truncated_tail = false;
  size_t stray_files_removed = 0;  // uncommitted compaction leftovers
};

class KvStore {
 public:
  struct Stats {
    uint64_t puts = 0;
    uint64_t erases = 0;
    uint64_t gets = 0;
    uint64_t hits = 0;
    uint64_t compactions = 0;
    uint64_t wal_bytes = 0;  // live WAL size
    uint64_t keys = 0;
  };

  /// Opens (or creates) the store in `env`. Fails closed on any sign of
  /// mid-log corruption or manifest damage — see the recovery rules above.
  static Result<std::unique_ptr<KvStore>> open(StorageEnv& env,
                                               KvStoreOptions opts = {});

  /// Durable upsert; success means the write survives a crash.
  Status put(ByteView key, ByteView value);
  /// Durable delete; success means the key stays dead across a crash.
  Status erase(ByteView key);

  std::optional<Bytes> get(ByteView key);
  /// Visits every live key with the given prefix in lexicographic order.
  /// The callback runs under the store lock: no store calls from inside.
  void for_each_prefix(ByteView prefix,
                       const std::function<void(ByteView key, ByteView value)>& fn);

  /// Writes a snapshot of the live table, switches to a fresh WAL under a
  /// bumped generation, and garbage-collects the old files.
  Status compact();
  /// Explicit durability barrier (only needed with sync_on_put = false).
  Status sync();

  const RecoveryInfo& recovery() const { return recovery_; }
  Stats stats();
  size_t size();

  // File-name helpers shared with tests and tools.
  static std::string wal_name(uint64_t gen);
  static std::string snap_name(uint64_t gen);
  static constexpr const char* kManifestName = "MANIFEST";
  static constexpr uint32_t kMaxFrameLen = 8u << 20;

 private:
  KvStore(StorageEnv& env, KvStoreOptions opts) : env_(env), opts_(opts) {}

  Status recover_locked();
  Status write_manifest_locked(uint64_t gen);
  Status append_frame_locked(ByteView payload);
  Status compact_locked();
  // Replays one WAL buffer into `table`; on a torn tail sets
  // `truncate_at`; on mid-log corruption returns store.corrupt.
  Status replay_wal_locked(ByteView wal, size_t& frames, size_t& truncate_at,
                           bool& truncated);

  StorageEnv& env_;
  KvStoreOptions opts_;
  std::mutex mu_;
  std::map<Bytes, Bytes> table_;
  std::unique_ptr<StorageFile> wal_;
  uint64_t generation_ = 0;
  bool wedged_ = false;  // a WAL write/sync failed: refuse further mutations
  RecoveryInfo recovery_;
  Stats stats_;
};

}  // namespace revelio::store

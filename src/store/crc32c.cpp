#include "store/crc32c.hpp"

#include <array>

namespace revelio::store {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41

std::array<uint32_t, 256> make_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& table() {
  static const std::array<uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

uint32_t crc32c(ByteView data, uint32_t seed) {
  const auto& t = table();
  uint32_t crc = ~seed;
  for (uint8_t byte : data) {
    crc = (crc >> 8) ^ t[(crc ^ byte) & 0xFF];
  }
  return ~crc;
}

}  // namespace revelio::store

// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) used to frame every durable
// record in the store. Software table-driven implementation: the store's
// unit of work is a whole WAL frame or snapshot body, so per-byte table
// lookup is far from the bottleneck (fsync is).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace revelio::store {

/// CRC-32C of `data`. `seed` is a previous return value for incremental use.
uint32_t crc32c(ByteView data, uint32_t seed = 0);

}  // namespace revelio::store

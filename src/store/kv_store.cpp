#include "store/kv_store.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "store/crc32c.hpp"

namespace revelio::store {

namespace {

constexpr char kManifestMagic[] = "RVKVMAN1";
constexpr char kSnapMagic[] = "RVKVSNP1";
constexpr uint8_t kOpPut = 1;
constexpr uint8_t kOpErase = 2;

struct ParsedOp {
  uint8_t op = 0;
  Bytes key;
  Bytes val;
};

// A frame payload must parse exactly — trailing garbage marks the frame bad.
bool parse_op(ByteView payload, ParsedOp& out) {
  if (payload.size() < 5) return false;
  out.op = payload[0];
  if (out.op != kOpPut && out.op != kOpErase) return false;
  const uint32_t klen = read_u32be(payload, 1);
  size_t pos = 5;
  if (payload.size() - pos < klen) return false;
  out.key = to_bytes(payload.subspan(pos, klen));
  pos += klen;
  if (out.op == kOpPut) {
    if (payload.size() - pos < 4) return false;
    const uint32_t vlen = read_u32be(payload, pos);
    pos += 4;
    if (payload.size() - pos < vlen) return false;
    out.val = to_bytes(payload.subspan(pos, vlen));
    pos += vlen;
  }
  return pos == payload.size();
}

enum class FrameCheck { kOk, kShort, kBad };

// Classifies the bytes at `off`: a complete valid frame, an incomplete
// tail, or a damaged frame. `op_out` may be null when only validity is
// being probed (the corruption scan).
FrameCheck check_frame(ByteView wal, size_t off, size_t& total_len,
                       ParsedOp* op_out) {
  if (wal.size() - off < 8) return FrameCheck::kShort;
  const uint32_t len = read_u32be(wal, off);
  if (len < 5 || len > KvStore::kMaxFrameLen) return FrameCheck::kBad;
  if (wal.size() - off - 8 < len) return FrameCheck::kShort;
  const uint32_t crc = read_u32be(wal, off + 4);
  const ByteView payload = wal.subspan(off + 8, len);
  if (crc32c(payload) != crc) return FrameCheck::kBad;
  ParsedOp scratch;
  ParsedOp& op = op_out != nullptr ? *op_out : scratch;
  if (!parse_op(payload, op)) return FrameCheck::kBad;
  total_len = 8 + static_cast<size_t>(len);
  return FrameCheck::kOk;
}

std::optional<uint64_t> parse_gen(const std::string& name,
                                  const std::string& prefix) {
  if (name.size() != prefix.size() + 16 || name.compare(0, prefix.size(), prefix) != 0) {
    return std::nullopt;
  }
  char* end = nullptr;
  const uint64_t gen = std::strtoull(name.c_str() + prefix.size(), &end, 16);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return gen;
}

}  // namespace

std::string KvStore::wal_name(uint64_t gen) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%016" PRIx64, gen);
  return buf;
}

std::string KvStore::snap_name(uint64_t gen) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "snap-%016" PRIx64, gen);
  return buf;
}

Result<std::unique_ptr<KvStore>> KvStore::open(StorageEnv& env,
                                               KvStoreOptions opts) {
  std::unique_ptr<KvStore> kv(new KvStore(env, opts));
  std::lock_guard<std::mutex> lock(kv->mu_);
  if (auto st = kv->recover_locked(); !st.ok()) return st.error();
  return kv;
}

Status KvStore::recover_locked() {
  auto files = env_.list_files();
  if (!files.ok()) return files.error();

  bool have_manifest = false;
  bool have_data = false;
  for (const auto& name : *files) {
    if (name == kManifestName) have_manifest = true;
    if (parse_gen(name, "wal-") || parse_gen(name, "snap-")) have_data = true;
  }

  if (!have_manifest) {
    if (have_data) {
      // Data files with no manifest means the commit record is gone; the
      // store's history cannot be authenticated, so refuse to guess.
      return Error::make("store.manifest_mismatch",
                         "data files present but MANIFEST missing");
    }
    generation_ = 1;
    if (auto st = write_manifest_locked(1); !st.ok()) return st;
    auto wal = env_.open_append(wal_name(1));
    if (!wal.ok()) return wal.error();
    wal_ = std::move(*wal);
    recovery_.generation = 1;
    return Status::success();
  }

  auto manifest = env_.read_file(kManifestName);
  if (!manifest.ok()) return manifest.error();
  if (manifest->size() != 20 ||
      !std::equal(kManifestMagic, kManifestMagic + 8, manifest->begin())) {
    return Error::make("store.manifest_mismatch", "bad manifest size or magic");
  }
  if (crc32c(ByteView(*manifest).first(16)) != read_u32be(*manifest, 16)) {
    return Error::make("store.manifest_mismatch", "manifest CRC mismatch");
  }
  const uint64_t gen = read_u64be(*manifest, 8);
  if (gen == 0) {
    return Error::make("store.manifest_mismatch", "manifest generation 0");
  }
  generation_ = gen;
  recovery_.generation = gen;

  // Files from any other generation are uncommitted compaction output or
  // post-commit garbage; both are safe (and necessary) to delete.
  for (const auto& name : *files) {
    for (const char* prefix : {"wal-", "snap-"}) {
      auto g = parse_gen(name, prefix);
      if (g && *g != gen) {
        if (auto st = env_.remove_file(name); !st.ok()) return st;
        ++recovery_.stray_files_removed;
      }
    }
  }

  if (env_.exists(snap_name(gen))) {
    auto snap = env_.read_file(snap_name(gen));
    if (!snap.ok()) return snap.error();
    if (snap->size() < 12 ||
        !std::equal(kSnapMagic, kSnapMagic + 8, snap->begin())) {
      return Error::make("store.corrupt", "snapshot header damaged");
    }
    const ByteView body = ByteView(*snap).subspan(12);
    if (crc32c(body) != read_u32be(*snap, 8)) {
      return Error::make("store.corrupt", "snapshot CRC mismatch");
    }
    if (body.size() < 4) {
      return Error::make("store.corrupt", "snapshot body truncated");
    }
    const uint32_t count = read_u32be(body, 0);
    size_t pos = 4;
    for (uint32_t i = 0; i < count; ++i) {
      if (body.size() - pos < 4) {
        return Error::make("store.corrupt", "snapshot record truncated");
      }
      const uint32_t klen = read_u32be(body, pos);
      pos += 4;
      if (body.size() - pos < klen) {
        return Error::make("store.corrupt", "snapshot key truncated");
      }
      Bytes key = to_bytes(body.subspan(pos, klen));
      pos += klen;
      if (body.size() - pos < 4) {
        return Error::make("store.corrupt", "snapshot record truncated");
      }
      const uint32_t vlen = read_u32be(body, pos);
      pos += 4;
      if (body.size() - pos < vlen) {
        return Error::make("store.corrupt", "snapshot value truncated");
      }
      table_[std::move(key)] = to_bytes(body.subspan(pos, vlen));
      pos += vlen;
    }
    if (pos != body.size()) {
      return Error::make("store.corrupt", "snapshot trailing bytes");
    }
    recovery_.snapshot_keys = table_.size();
  }

  if (env_.exists(wal_name(gen))) {
    auto wal = env_.read_file(wal_name(gen));
    if (!wal.ok()) return wal.error();
    size_t frames = 0;
    size_t truncate_at = wal->size();
    bool truncated = false;
    if (auto st = replay_wal_locked(*wal, frames, truncate_at, truncated);
        !st.ok()) {
      return st;
    }
    recovery_.wal_frames_replayed = frames;
    if (truncated) {
      recovery_.truncated_tail = true;
      recovery_.wal_bytes_truncated = wal->size() - truncate_at;
      // Physically drop the torn tail so future appends extend a clean log.
      if (auto st = env_.write_file_atomic(
              wal_name(gen), ByteView(*wal).first(truncate_at));
          !st.ok()) {
        return st;
      }
    }
  }

  auto wal = env_.open_append(wal_name(gen));
  if (!wal.ok()) return wal.error();
  wal_ = std::move(*wal);
  stats_.wal_bytes = wal_->size();
  return Status::success();
}

Status KvStore::replay_wal_locked(ByteView wal, size_t& frames,
                                  size_t& truncate_at, bool& truncated) {
  size_t off = 0;
  while (off < wal.size()) {
    size_t total = 0;
    ParsedOp op;
    const FrameCheck fc = check_frame(wal, off, total, &op);
    if (fc == FrameCheck::kOk) {
      if (op.op == kOpPut) {
        table_[std::move(op.key)] = std::move(op.val);
      } else {
        table_.erase(op.key);
      }
      off += total;
      ++frames;
      continue;
    }
    // Torn tail or corruption? A crash can only damage the *end* of an
    // append-only log. If any complete valid frame exists beyond this
    // point, the damage is inside the log: fail closed.
    for (size_t p = off + 1; p + 8 <= wal.size(); ++p) {
      size_t probe = 0;
      if (check_frame(wal, p, probe, nullptr) == FrameCheck::kOk) {
        return Error::make(
            "store.corrupt",
            "bad WAL frame at offset " + std::to_string(off) +
                " followed by valid frames: mid-log corruption");
      }
    }
    truncate_at = off;
    truncated = true;
    return Status::success();
  }
  truncate_at = wal.size();
  truncated = false;
  return Status::success();
}

Status KvStore::write_manifest_locked(uint64_t gen) {
  Bytes m;
  append(m, std::string_view(kManifestMagic, 8));
  append_u64be(m, gen);
  append_u32be(m, crc32c(m));
  return env_.write_file_atomic(kManifestName, m);
}

Status KvStore::append_frame_locked(ByteView payload) {
  Bytes frame;
  frame.reserve(payload.size() + 8);
  append_u32be(frame, static_cast<uint32_t>(payload.size()));
  append_u32be(frame, crc32c(payload));
  append(frame, payload);
  if (auto st = wal_->append(frame); !st.ok()) {
    // A pure transient failure (injected EIO) wrote nothing and may be
    // retried; anything else leaves the log in an unknown state, so the
    // store wedges until it is reopened through recovery.
    if (st.error().code != "store.io_transient") wedged_ = true;
    return st;
  }
  if (opts_.sync_on_put) {
    if (auto st = wal_->sync(); !st.ok()) {
      wedged_ = true;
      return st;
    }
  }
  stats_.wal_bytes += payload.size() + 8;
  return Status::success();
}

Status KvStore::put(ByteView key, ByteView value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wedged_) {
    return Error::make("store.io_crashed", "store wedged by earlier WAL failure");
  }
  Bytes payload;
  payload.reserve(key.size() + value.size() + 9);
  append_u8(payload, kOpPut);
  append_u32be(payload, static_cast<uint32_t>(key.size()));
  append(payload, key);
  append_u32be(payload, static_cast<uint32_t>(value.size()));
  append(payload, value);
  if (auto st = append_frame_locked(payload); !st.ok()) return st;
  table_[to_bytes(key)] = to_bytes(value);
  ++stats_.puts;
  if (opts_.compact_threshold_bytes > 0 &&
      stats_.wal_bytes > opts_.compact_threshold_bytes) {
    // The put is already durably acked; a compaction failure here wedges
    // the store (handled inside) but must not retract the ack.
    (void)compact_locked();
  }
  return Status::success();
}

Status KvStore::erase(ByteView key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wedged_) {
    return Error::make("store.io_crashed", "store wedged by earlier WAL failure");
  }
  Bytes payload;
  payload.reserve(key.size() + 5);
  append_u8(payload, kOpErase);
  append_u32be(payload, static_cast<uint32_t>(key.size()));
  append(payload, key);
  if (auto st = append_frame_locked(payload); !st.ok()) return st;
  table_.erase(to_bytes(key));
  ++stats_.erases;
  return Status::success();
}

std::optional<Bytes> KvStore::get(ByteView key) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.gets;
  auto it = table_.find(to_bytes(key));
  if (it == table_.end()) return std::nullopt;
  ++stats_.hits;
  return it->second;
}

void KvStore::for_each_prefix(
    ByteView prefix,
    const std::function<void(ByteView key, ByteView value)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const Bytes p = to_bytes(prefix);
  for (auto it = table_.lower_bound(p); it != table_.end(); ++it) {
    if (it->first.size() < p.size() ||
        !std::equal(p.begin(), p.end(), it->first.begin())) {
      break;
    }
    fn(it->first, it->second);
  }
}

Status KvStore::compact() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wedged_) {
    return Error::make("store.io_crashed", "store wedged by earlier WAL failure");
  }
  return compact_locked();
}

Status KvStore::compact_locked() {
  const uint64_t new_gen = generation_ + 1;

  Bytes body;
  append_u32be(body, static_cast<uint32_t>(table_.size()));
  for (const auto& [key, val] : table_) {
    append_u32be(body, static_cast<uint32_t>(key.size()));
    append(body, ByteView(key));
    append_u32be(body, static_cast<uint32_t>(val.size()));
    append(body, ByteView(val));
  }
  Bytes snap;
  snap.reserve(body.size() + 12);
  append(snap, std::string_view(kSnapMagic, 8));
  append_u32be(snap, crc32c(body));
  append(snap, body);

  if (auto st = env_.write_file_atomic(snap_name(new_gen), snap); !st.ok()) {
    if (st.error().code == "store.io_crashed") wedged_ = true;
    return st;
  }
  auto new_wal = env_.open_append(wal_name(new_gen));
  if (!new_wal.ok()) {
    if (new_wal.error().code == "store.io_crashed") wedged_ = true;
    return new_wal.error();
  }
  if (auto st = (*new_wal)->sync(); !st.ok()) {
    if (st.error().code == "store.io_crashed") wedged_ = true;
    return st;
  }
  // Commit point: after this manifest lands, recovery reads the new
  // generation; before it, the old one. Either way the store is whole.
  if (auto st = write_manifest_locked(new_gen); !st.ok()) {
    if (st.error().code == "store.io_crashed") wedged_ = true;
    return st;
  }
  const uint64_t old_gen = generation_;
  generation_ = new_gen;
  wal_ = std::move(*new_wal);
  stats_.wal_bytes = 0;
  ++stats_.compactions;
  // Old-generation files are garbage now; failures here are repaired by
  // the stray-file sweep on the next open.
  (void)env_.remove_file(wal_name(old_gen));
  (void)env_.remove_file(snap_name(old_gen));
  return Status::success();
}

Status KvStore::sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wedged_) {
    return Error::make("store.io_crashed", "store wedged by earlier WAL failure");
  }
  return wal_->sync();
}

KvStore::Stats KvStore::stats() {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.keys = table_.size();
  return s;
}

size_t KvStore::size() {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

}  // namespace revelio::store

// Pluggable storage backend for the durable state tier.
//
// The KV engine (kv_store.hpp) talks to storage exclusively through
// `StorageEnv` / `StorageFile`, which model the three primitives a
// log-structured store needs:
//
//   - append-only streams with an explicit `sync()` durability barrier
//     (the WAL),
//   - whole-file atomic replacement (`write_file_atomic`, i.e. the
//     write-tmp / fsync / rename idiom) for snapshots and the manifest,
//   - directory listing for recovery.
//
// Two implementations:
//
//   `MemStorageEnv` — deterministic, fault-injectable. Extends the PR 4
//   chaos philosophy (seeded, reproducible faults) down to the storage
//   layer. Every file keeps a *durable* prefix (what survived the last
//   honoured sync) and a *volatile* tail (written but not yet synced). A
//   crash discards every volatile tail — so a kill point between a write
//   and its barrier yields exactly the torn-write states a real kernel
//   can produce. Fault plan knobs:
//
//     crash_at_bytes   kill the process after N total appended bytes;
//                      the append that crosses the budget is applied
//                      *partially* (a torn write) and fails.
//     drop_sync        fsync lies: reports success without promoting the
//                      volatile tail (firmware/VM write-cache betrayal).
//     duplicate_tail   on crash, the last appended block reappears twice
//                      (a re-ordered/replayed block, as seen on some
//                      buggy flash translation layers).
//     fail_appends     the next N appends fail with `store.io_transient`
//                      without touching state (retryable EIO).
//
//   `RealStorageEnv` — POSIX files under a root directory, with real
//   fsync barriers and atomic rename. Used by the warm-restart bench and
//   the offline `audit_verify --store` path.
//
// Thread safety: both envs serialise internally; the KV store adds its
// own coarser lock on top.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace revelio::store {

/// Append-only handle to one file. Writes become durable only after a
/// successful (and honoured) `sync()`.
class StorageFile {
 public:
  virtual ~StorageFile() = default;
  virtual Status append(ByteView data) = 0;
  virtual Status sync() = 0;
  virtual uint64_t size() const = 0;  // includes unsynced tail
};

class StorageEnv {
 public:
  virtual ~StorageEnv() = default;

  /// Opens `name` for appending, creating it empty if missing.
  virtual Result<std::unique_ptr<StorageFile>> open_append(
      const std::string& name) = 0;
  /// Reads the whole current content of `name`.
  virtual Result<Bytes> read_file(const std::string& name) = 0;
  /// Replaces `name` with `data` all-or-nothing (tmp + fsync + rename).
  virtual Status write_file_atomic(const std::string& name, ByteView data) = 0;
  virtual Status remove_file(const std::string& name) = 0;
  virtual Result<std::vector<std::string>> list_files() = 0;
  virtual bool exists(const std::string& name) = 0;
};

/// Seeded crash/fault plan for `MemStorageEnv`.
struct FaultPlan {
  int64_t crash_at_bytes = -1;  // total appended bytes before the kill; -1 off
  bool drop_sync = false;       // sync() reports success but is a no-op
  bool duplicate_tail = false;  // crash re-appends the last block once more
  int fail_appends = 0;         // next N appends fail store.io_transient
};

/// In-memory backend with deterministic fault injection.
class MemStorageEnv : public StorageEnv {
 public:
  MemStorageEnv() = default;

  Result<std::unique_ptr<StorageFile>> open_append(
      const std::string& name) override;
  Result<Bytes> read_file(const std::string& name) override;
  Status write_file_atomic(const std::string& name, ByteView data) override;
  Status remove_file(const std::string& name) override;
  Result<std::vector<std::string>> list_files() override;
  bool exists(const std::string& name) override;

  void set_fault_plan(const FaultPlan& plan);

  /// Simulates the machine dying and rebooting: every volatile (unsynced)
  /// tail is discarded, the duplicate-tail fault is applied if armed, and
  /// the env becomes usable again with a clean fault plan.
  void crash_and_recover();

  /// True once a crash point fired; all mutating ops fail until
  /// `crash_and_recover()`.
  bool crashed() const;

  /// Flips one byte of the *durable* image of `name` (disk corruption).
  /// Returns false if the file or offset does not exist.
  bool corrupt_durable_byte(const std::string& name, size_t offset,
                            uint8_t xor_mask = 0xFF);

  /// Total bytes appended across all files (to size crash matrices).
  uint64_t bytes_appended() const;

 private:
  struct FileState {
    Bytes durable;        // survives a crash
    Bytes tail;           // volatile: written since the last honoured sync
    Bytes last_block;     // most recent append, for duplicate_tail
    bool dup_tail_armed = false;
  };

  class MemFile;
  friend class MemFile;

  // Applies up to `budget_left()` bytes of `data` to `fs.tail`; returns
  // whether the full append fit (false == the crash point fired).
  Status append_locked(FileState& fs, ByteView data);

  mutable std::mutex mu_;
  std::map<std::string, FileState> files_;
  FaultPlan plan_;
  uint64_t bytes_appended_ = 0;
  bool crashed_ = false;
};

/// POSIX-file backend rooted at `root` (created if missing).
class RealStorageEnv : public StorageEnv {
 public:
  /// Fails with `store.io_transient` if the root cannot be created.
  static Result<std::unique_ptr<RealStorageEnv>> open(const std::string& root);

  Result<std::unique_ptr<StorageFile>> open_append(
      const std::string& name) override;
  Result<Bytes> read_file(const std::string& name) override;
  Status write_file_atomic(const std::string& name, ByteView data) override;
  Status remove_file(const std::string& name) override;
  Result<std::vector<std::string>> list_files() override;
  bool exists(const std::string& name) override;

  const std::string& root() const { return root_; }

 private:
  explicit RealStorageEnv(std::string root) : root_(std::move(root)) {}
  std::string path(const std::string& name) const { return root_ + "/" + name; }

  std::string root_;
};

}  // namespace revelio::store

// X.509-style certificates and certificate signing requests.
//
// A deliberately simplified but faithful model of the WebPKI machinery the
// paper leans on (§2.2): canonical TBS ("to be signed") serialization,
// ECDSA signatures, subject alternative names, CA flags, validity windows,
// and chain verification up to a trusted root set. The same structures
// carry AMD's endorsement-key chain (ARK → ASK → VCEK).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/sha2.hpp"

namespace revelio::pki {

struct DistinguishedName {
  std::string common_name;
  std::string organization;
  std::string country;

  Bytes serialize() const;
  friend bool operator==(const DistinguishedName&,
                         const DistinguishedName&) = default;
};

/// Resolves curve names stored in certificates to curve singletons.
Result<const crypto::Curve*> curve_by_name(const std::string& name);

struct Certificate {
  std::uint64_t serial = 0;
  DistinguishedName subject;
  DistinguishedName issuer;
  std::uint64_t not_before_us = 0;  // simulated-clock microseconds
  std::uint64_t not_after_us = 0;
  std::string curve_name;           // curve of the subject public key
  Bytes public_key;                 // SEC1 uncompressed point
  std::vector<std::string> san_dns;
  bool is_ca = false;
  std::string sig_curve_name;       // curve of the issuer key
  Bytes signature;                  // ECDSA over sha384(tbs())

  /// Canonical serialization of everything except the signature.
  Bytes tbs() const;

  Bytes serialize() const;
  static Result<Certificate> parse(ByteView data);

  crypto::Digest32 fingerprint() const { return crypto::sha256(serialize()); }

  /// True if `name` appears in the SANs (or equals the CN as fallback).
  bool matches_dns(const std::string& name) const;

  /// Verifies this certificate's signature against an issuer public key.
  bool verify_signature(const Certificate& issuer_cert) const;
};

struct CertificateSigningRequest {
  DistinguishedName subject;
  std::vector<std::string> san_dns;
  std::string curve_name;
  Bytes public_key;  // SEC1
  Bytes signature;   // self-signature proving key possession

  Bytes tbs() const;
  Bytes serialize() const;
  static Result<CertificateSigningRequest> parse(ByteView data);

  /// Checks the proof-of-possession self-signature.
  bool verify() const;

  /// Hash bound into the SEV-SNP REPORT_DATA field (§5.2.2).
  crypto::Digest32 digest() const { return crypto::sha256(serialize()); }
};

/// Builds a CSR signed by `key` on `curve`.
CertificateSigningRequest make_csr(const crypto::Curve& curve,
                                   const crypto::EcKeyPair& key,
                                   DistinguishedName subject,
                                   std::vector<std::string> san_dns);

struct ChainVerifyOptions {
  std::uint64_t now_us = 0;
  std::optional<std::string> dns_name;  // require leaf to cover this name
};

/// Verifies leaf -> intermediates -> one of `roots`. Checks signatures,
/// validity windows, CA flags on non-leaf certs, and (optionally) the DNS
/// name on the leaf.
Status verify_chain(const Certificate& leaf,
                    const std::vector<Certificate>& intermediates,
                    const std::vector<Certificate>& roots,
                    const ChainVerifyOptions& options);

}  // namespace revelio::pki

#include "pki/acme.hpp"

#include "common/hex.hpp"

namespace revelio::pki {

AcmeIssuer::AcmeIssuer(SimClock& clock, crypto::HmacDrbg& drbg,
                       AcmeConfig config)
    : clock_(clock),
      config_(config),
      challenge_drbg_(drbg.generate(32),
                      to_bytes(std::string_view("acme-challenges"))) {
  const std::uint64_t now = clock_.now_us();
  const std::uint64_t ten_years = 10ull * 365 * 24 * 3600 * 1000 * 1000;
  root_ca_ = std::make_unique<CertificateAuthority>(
      CertificateAuthority::create_root(
          crypto::p384(), {"Revelio Trust Services Root X1", "Revelio CA", "US"},
          now, now + ten_years, drbg));
  issuing_ca_ = std::make_unique<CertificateAuthority>(
      CertificateAuthority::create_intermediate(
          crypto::p384(), {"Revelio Intermediate R3", "Revelio CA", "US"}, now,
          now + ten_years / 2, *root_ca_, drbg));
  root_cert_ = root_ca_->certificate();
  issuing_cert_ = issuing_ca_->certificate();
}

std::string AcmeIssuer::request_challenge(const std::string& account,
                                          const std::string& domain) {
  const std::string token = to_hex(challenge_drbg_.generate(16));
  challenges_[{account, domain}] = token;
  return token;
}

std::string AcmeIssuer::registered_domain(const std::string& fqdn) const {
  // Registered domain = last two labels (example.com from a.b.example.com).
  std::size_t last = fqdn.rfind('.');
  if (last == std::string::npos) return fqdn;
  std::size_t second = fqdn.rfind('.', last - 1);
  if (second == std::string::npos) return fqdn;
  return fqdn.substr(second + 1);
}

void AcmeIssuer::prune_window(std::deque<std::uint64_t>& times) const {
  const std::uint64_t now = clock_.now_us();
  const std::uint64_t cutoff =
      now > config_.rate_window_us ? now - config_.rate_window_us : 0;
  while (!times.empty() && times.front() < cutoff) times.pop_front();
}

std::size_t AcmeIssuer::issued_in_window(
    const std::string& registered) const {
  auto it = issuance_log_.find(registered);
  if (it == issuance_log_.end()) return 0;
  prune_window(it->second);
  return it->second.size();
}

void AcmeIssuer::set_outage_window(std::uint64_t start_us,
                                   std::uint64_t end_us) {
  outage_start_us_ = start_us;
  outage_end_us_ = end_us;
}

Result<Certificate> AcmeIssuer::finalize(const std::string& account,
                                         const CertificateSigningRequest& csr,
                                         const DnsTxtLookup& lookup) {
  if (clock_.now_us() >= outage_start_us_ &&
      clock_.now_us() < outage_end_us_) {
    return Error::make("acme.unavailable", "CA maintenance window");
  }
  if (!csr.verify()) {
    return Error::make("acme.bad_csr", "CSR proof-of-possession failed");
  }
  if (csr.san_dns.empty()) {
    return Error::make("acme.no_identifiers", "CSR names no domains");
  }
  // Every named domain must pass DNS-01.
  for (const auto& domain : csr.san_dns) {
    const auto it = challenges_.find({account, domain});
    if (it == challenges_.end()) {
      return Error::make("acme.no_challenge",
                         "no outstanding challenge for " + domain);
    }
    const auto records = lookup("_acme-challenge." + domain);
    bool found = false;
    for (const auto& record : records) {
      if (record == it->second) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Error::make("acme.challenge_failed",
                         "DNS-01 token not found for " + domain);
    }
  }
  // Rate limiting per registered domain.
  for (const auto& domain : csr.san_dns) {
    const std::string registered = registered_domain(domain);
    auto& log = issuance_log_[registered];
    prune_window(log);
    if (log.size() >= config_.certs_per_domain) {
      return Error::make("acme.rate_limited",
                         registered + " exceeded " +
                             std::to_string(config_.certs_per_domain) +
                             " certificates per window");
    }
  }

  // Issue. The latency models Let's Encrypt's server-side pipeline and is
  // charged to the simulated clock (Table 2's dominant term).
  clock_.advance_ms(config_.issuance_latency_ms);
  auto cert = issuing_ca_->issue(csr, clock_.now_us(),
                                 clock_.now_us() + config_.cert_lifetime_us);
  if (!cert.ok()) return cert.error();

  for (const auto& domain : csr.san_dns) {
    issuance_log_[registered_domain(domain)].push_back(clock_.now_us());
    challenges_.erase({account, domain});
  }
  return cert;
}

}  // namespace revelio::pki

#include "pki/chain_cache.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace revelio::pki {

namespace {

constexpr std::string_view kChainKeyPrefix = "chain/";
constexpr std::size_t kChainValueSize = 16;  // from_us || until_us, u64be

Bytes chain_store_key(const crypto::Digest32& key) {
  Bytes k;
  k.reserve(kChainKeyPrefix.size() + crypto::Digest32::size());
  append(k, kChainKeyPrefix);
  append(k, key.view());
  return k;
}

}  // namespace

ChainVerificationCache::ChainVerificationCache(std::size_t capacity)
    : capacity_(capacity) {}

void ChainVerificationCache::attach_store(store::KvStore* kv) {
  std::lock_guard<std::mutex> lock(mutex_);
  store_ = kv;
}

crypto::Digest32 ChainVerificationCache::cache_key(
    const Certificate& leaf, const std::vector<Certificate>& intermediates,
    const std::vector<Certificate>& roots, const ChainVerifyOptions& options) {
  // Hash the exact bytes of every certificate involved: a re-issued leaf
  // (new validity window, new signature) or a rotated root set produces a
  // different key, which is the invalidation mechanism.
  crypto::Sha256 h;
  auto add = [&h](const Certificate& cert) {
    const Bytes s = cert.serialize();
    Bytes len;
    append_u32be(len, static_cast<std::uint32_t>(s.size()));
    h.update(len);
    h.update(s);
  };
  add(leaf);
  Bytes counts;
  append_u32be(counts, static_cast<std::uint32_t>(intermediates.size()));
  append_u32be(counts, static_cast<std::uint32_t>(roots.size()));
  h.update(counts);
  for (const auto& cert : intermediates) add(cert);
  for (const auto& cert : roots) add(cert);
  if (options.dns_name) {
    h.update(to_bytes(std::string_view("dns:")));
    h.update(to_bytes(*options.dns_name));
  }
  return h.finish();
}

Status ChainVerificationCache::verify(
    const Certificate& leaf, const std::vector<Certificate>& intermediates,
    const std::vector<Certificate>& roots, const ChainVerifyOptions& options) {
  return verify_keyed(cache_key(leaf, intermediates, roots, options), leaf,
                      intermediates, roots, options);
}

Status ChainVerificationCache::verify_keyed(
    const crypto::Digest32& key, const Certificate& leaf,
    const std::vector<Certificate>& intermediates,
    const std::vector<Certificate>& roots, const ChainVerifyOptions& options) {
  obs::Span span("pki.chain_verify");
  span.attr("chain_len",
            static_cast<std::uint64_t>(1 + intermediates.size()));

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      // Half-open window, matching verify_chain: a hit must not be served
      // at the instant the chain expires.
      if (options.now_us >= it->second.valid_from_us &&
          options.now_us < it->second.valid_until_us) {
        ++stats_.hits;
        obs::metrics().counter("pki.chain_cache.hit.count").inc();
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        span.attr("cache", "hit");
        span.attr("result", "ok");
        return Status::success();
      }
      // Same chain, but the query time left the verified window: the
      // cached verdict no longer applies.
      ++stats_.window_rejects;
      obs::metrics().counter("pki.chain_cache.expiry.count").inc();
      span.attr("cache", "expired");
      lru_.erase(it->second.lru_it);
      entries_.erase(it);
    } else {
      span.attr("cache", "miss");
    }
    ++stats_.misses;
    obs::metrics().counter("pki.chain_cache.miss.count").inc();
  }

  // Durable tier: a previous run may have verified this exact chain. The
  // persisted record holds only the validity window — the verdict applies
  // because the fingerprint was recomputed from the bytes presented *now*,
  // and it is honored only while now_us stays inside that window. Anything
  // malformed is treated as a miss and re-verified (never trusted).
  if (store_ != nullptr) {
    if (const auto stored = store_->get(chain_store_key(key));
        stored && stored->size() == kChainValueSize) {
      const std::uint64_t from = read_u64be(*stored, 0);
      const std::uint64_t until = read_u64be(*stored, 8);
      if (from < until && options.now_us >= from && options.now_us < until) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.store_hits;
        obs::metrics().counter("pki.chain_cache.store_hit.count").inc();
        insert_locked(key, from, until);
        span.attr("cache", "store_hit");
        span.attr("result", "ok");
        return Status::success();
      }
    }
  }

  const Status st = verify_chain(leaf, intermediates, roots, options);
  obs::metrics()
      .counter("pki.chain_verify.result.count",
               {{"result", st.ok() ? "ok" : st.error().code}})
      .inc();
  span.attr("result", st.ok() ? "ok" : st.error().code);
  if (!st.ok()) return st;  // failures are never cached

  // Conservative validity intersection over every certificate supplied,
  // not just the path verify_chain walked: a hit may only be served while
  // all of them remain valid.
  std::uint64_t from = leaf.not_before_us;
  std::uint64_t until = leaf.not_after_us;
  auto tighten = [&](const Certificate& cert) {
    from = std::max(from, cert.not_before_us);
    until = std::min(until, cert.not_after_us);
  };
  for (const auto& cert : intermediates) tighten(cert);
  for (const auto& cert : roots) tighten(cert);

  std::lock_guard<std::mutex> lock(mutex_);
  insert_locked(key, from, until);
  if (store_ != nullptr) {
    Bytes value;
    value.reserve(kChainValueSize);
    append_u64be(value, from);
    append_u64be(value, until);
    // Best effort: a failed write-through leaves the verdict memory-only
    // and the next restart re-verifies — slower, never less safe.
    if (!store_->put(chain_store_key(key), value).ok()) {
      ++stats_.store_write_failures;
      obs::metrics().counter("pki.chain_cache.store_write_failure.count").inc();
    }
  }
  return st;
}

void ChainVerificationCache::insert_locked(const crypto::Digest32& key,
                                           std::uint64_t from,
                                           std::uint64_t until) {
  if (capacity_ == 0 || entries_.count(key) != 0) return;
  if (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
    obs::metrics().counter("pki.chain_cache.eviction.count").inc();
  }
  lru_.push_front(key);
  entries_[key] = Entry{from, until, lru_.begin()};
}

ChainVerificationCache::Stats ChainVerificationCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ChainVerificationCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void ChainVerificationCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
}

ShardedChainCache::ShardedChainCache(std::size_t shards,
                                     std::size_t capacity_per_shard) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(
        std::make_unique<ChainVerificationCache>(capacity_per_shard));
  }
}

std::size_t ShardedChainCache::shard_index(const crypto::Digest32& key) const {
  std::uint64_t prefix = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    prefix = (prefix << 8) | key[i];
  }
  return static_cast<std::size_t>(prefix % shards_.size());
}

Status ShardedChainCache::verify(const Certificate& leaf,
                                 const std::vector<Certificate>& intermediates,
                                 const std::vector<Certificate>& roots,
                                 const ChainVerifyOptions& options) {
  const crypto::Digest32 key =
      ChainVerificationCache::cache_key(leaf, intermediates, roots, options);
  return shards_[shard_index(key)]->verify_keyed(key, leaf, intermediates,
                                                 roots, options);
}

ChainVerificationCache::Stats ShardedChainCache::stats() const {
  ChainVerificationCache::Stats total;
  for (const auto& shard : shards_) {
    const ChainVerificationCache::Stats s = shard->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.window_rejects += s.window_rejects;
    total.store_hits += s.store_hits;
    total.store_write_failures += s.store_write_failures;
  }
  return total;
}

std::size_t ShardedChainCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

void ShardedChainCache::clear() {
  for (auto& shard : shards_) shard->clear();
}

void ShardedChainCache::attach_store(store::KvStore* kv) {
  for (auto& shard : shards_) shard->attach_store(kv);
}

}  // namespace revelio::pki

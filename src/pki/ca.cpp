#include "pki/ca.hpp"

namespace revelio::pki {

CertificateAuthority::CertificateAuthority(const crypto::Curve& curve,
                                           crypto::EcKeyPair key)
    : curve_(&curve), key_(std::move(key)) {}

CertificateAuthority CertificateAuthority::create_root(
    const crypto::Curve& curve, DistinguishedName name,
    std::uint64_t not_before_us, std::uint64_t not_after_us,
    crypto::HmacDrbg& drbg) {
  CertificateAuthority ca(curve, crypto::ec_generate(curve, drbg));
  Certificate cert;
  cert.serial = 0;
  cert.subject = name;
  cert.issuer = name;
  cert.not_before_us = not_before_us;
  cert.not_after_us = not_after_us;
  cert.curve_name = curve.params().name;
  cert.public_key = ca.key_.public_encoded(curve);
  cert.is_ca = true;
  cert.sig_curve_name = curve.params().name;
  const auto hash = crypto::sha384(cert.tbs());
  cert.signature =
      crypto::ecdsa_sign(curve, ca.key_.d, hash.view()).encode(curve);
  ca.cert_ = std::move(cert);
  return ca;
}

CertificateAuthority CertificateAuthority::create_intermediate(
    const crypto::Curve& curve, DistinguishedName name,
    std::uint64_t not_before_us, std::uint64_t not_after_us,
    CertificateAuthority& parent, crypto::HmacDrbg& drbg) {
  CertificateAuthority ca(curve, crypto::ec_generate(curve, drbg));
  ca.cert_ = parent.issue_for_key(curve.params().name,
                                  ca.key_.public_encoded(curve), name, {},
                                  not_before_us, not_after_us, /*is_ca=*/true);
  return ca;
}

Result<Certificate> CertificateAuthority::issue(
    const CertificateSigningRequest& csr, std::uint64_t not_before_us,
    std::uint64_t not_after_us, bool is_ca) {
  if (!csr.verify()) {
    return Error::make("ca.bad_csr", "CSR self-signature invalid");
  }
  return issue_for_key(csr.curve_name, csr.public_key, csr.subject,
                       csr.san_dns, not_before_us, not_after_us, is_ca);
}

Certificate CertificateAuthority::issue_for_key(
    const std::string& curve_name, ByteView public_key,
    DistinguishedName subject, std::vector<std::string> san_dns,
    std::uint64_t not_before_us, std::uint64_t not_after_us, bool is_ca) {
  Certificate cert;
  cert.serial = next_serial_++;
  cert.subject = std::move(subject);
  cert.issuer = cert_.subject;
  cert.not_before_us = not_before_us;
  cert.not_after_us = not_after_us;
  cert.curve_name = curve_name;
  cert.public_key = to_bytes(public_key);
  cert.san_dns = std::move(san_dns);
  cert.is_ca = is_ca;
  cert.sig_curve_name = curve_->params().name;
  const auto hash = crypto::sha384(cert.tbs());
  cert.signature =
      crypto::ecdsa_sign(*curve_, key_.d, hash.view()).encode(*curve_);
  return cert;
}

}  // namespace revelio::pki

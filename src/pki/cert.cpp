#include "pki/cert.hpp"

namespace revelio::pki {

namespace {

void append_string(Bytes& out, const std::string& s) {
  append_u32be(out, static_cast<std::uint32_t>(s.size()));
  append(out, s);
}

void append_bytes_field(Bytes& out, ByteView v) {
  append_u32be(out, static_cast<std::uint32_t>(v.size()));
  append(out, v);
}

struct Reader {
  ByteView data;
  std::size_t off = 0;
  bool failed = false;

  std::uint32_t u32() {
    if (off + 4 > data.size()) {
      failed = true;
      return 0;
    }
    const std::uint32_t v = read_u32be(data, off);
    off += 4;
    return v;
  }
  std::uint64_t u64() {
    if (off + 8 > data.size()) {
      failed = true;
      return 0;
    }
    const std::uint64_t v = read_u64be(data, off);
    off += 8;
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    if (failed || off + len > data.size()) {
      failed = true;
      return {};
    }
    std::string s(data.begin() + static_cast<std::ptrdiff_t>(off),
                  data.begin() + static_cast<std::ptrdiff_t>(off + len));
    off += len;
    return s;
  }
  Bytes bytes() {
    const std::uint32_t len = u32();
    if (failed || off + len > data.size()) {
      failed = true;
      return {};
    }
    Bytes b = to_bytes(data.subspan(off, len));
    off += len;
    return b;
  }
};

void append_dn(Bytes& out, const DistinguishedName& dn) {
  append_string(out, dn.common_name);
  append_string(out, dn.organization);
  append_string(out, dn.country);
}

DistinguishedName read_dn(Reader& r) {
  DistinguishedName dn;
  dn.common_name = r.str();
  dn.organization = r.str();
  dn.country = r.str();
  return dn;
}

}  // namespace

Bytes DistinguishedName::serialize() const {
  Bytes out;
  append_dn(out, *this);
  return out;
}

Result<const crypto::Curve*> curve_by_name(const std::string& name) {
  if (name == "P-256") return &crypto::p256();
  if (name == "P-384") return &crypto::p384();
  return Error::make("pki.unknown_curve", name);
}

Bytes Certificate::tbs() const {
  Bytes out;
  append(out, std::string_view("REVELIO-CERT-V1"));
  append_u64be(out, serial);
  append_dn(out, subject);
  append_dn(out, issuer);
  append_u64be(out, not_before_us);
  append_u64be(out, not_after_us);
  append_string(out, curve_name);
  append_bytes_field(out, public_key);
  append_u32be(out, static_cast<std::uint32_t>(san_dns.size()));
  for (const auto& san : san_dns) append_string(out, san);
  append_u8(out, is_ca ? 1 : 0);
  append_string(out, sig_curve_name);
  return out;
}

Bytes Certificate::serialize() const {
  Bytes out = tbs();
  append_bytes_field(out, signature);
  return out;
}

Result<Certificate> Certificate::parse(ByteView data) {
  Reader r{data};
  // Tag check.
  constexpr std::string_view kTag = "REVELIO-CERT-V1";
  if (data.size() < kTag.size() ||
      to_string(data.subspan(0, kTag.size())) != kTag) {
    return Error::make("pki.bad_cert_tag");
  }
  r.off = kTag.size();
  Certificate cert;
  cert.serial = r.u64();
  cert.subject = read_dn(r);
  cert.issuer = read_dn(r);
  cert.not_before_us = r.u64();
  cert.not_after_us = r.u64();
  cert.curve_name = r.str();
  cert.public_key = r.bytes();
  const std::uint32_t san_count = r.u32();
  if (san_count > 1024) return Error::make("pki.bad_cert", "too many SANs");
  for (std::uint32_t i = 0; i < san_count && !r.failed; ++i) {
    cert.san_dns.push_back(r.str());
  }
  if (r.off < data.size()) {
    cert.is_ca = data[r.off] != 0;
    ++r.off;
  } else {
    r.failed = true;
  }
  cert.sig_curve_name = r.str();
  cert.signature = r.bytes();
  if (r.failed) return Error::make("pki.bad_cert", "truncated certificate");
  return cert;
}

bool Certificate::matches_dns(const std::string& name) const {
  for (const auto& san : san_dns) {
    if (san == name) return true;
    // Single-level wildcard: *.example.com covers a.example.com.
    if (san.size() > 2 && san[0] == '*' && san[1] == '.') {
      const std::string_view suffix(san.c_str() + 1);  // ".example.com"
      if (name.size() > suffix.size() &&
          std::string_view(name).substr(name.size() - suffix.size()) ==
              suffix &&
          name.find('.') == name.size() - suffix.size() + 0) {
        // The matched label must not itself contain a dot.
        const std::string_view label =
            std::string_view(name).substr(0, name.size() - suffix.size());
        if (label.find('.') == std::string_view::npos) return true;
      }
    }
  }
  return san_dns.empty() && subject.common_name == name;
}

bool Certificate::verify_signature(const Certificate& issuer_cert) const {
  auto curve = curve_by_name(issuer_cert.curve_name);
  if (!curve.ok()) return false;
  const auto pub = (*curve)->decode_point(issuer_cert.public_key);
  if (!pub.ok()) return false;
  auto sig = crypto::EcdsaSignature::decode(**curve, signature);
  if (!sig.ok()) return false;
  const auto hash = crypto::sha384(tbs());
  return crypto::ecdsa_verify(**curve, *pub, hash.view(), *sig);
}

Bytes CertificateSigningRequest::tbs() const {
  Bytes out;
  append(out, std::string_view("REVELIO-CSR-V1"));
  append_dn(out, subject);
  append_u32be(out, static_cast<std::uint32_t>(san_dns.size()));
  for (const auto& san : san_dns) append_string(out, san);
  append_string(out, curve_name);
  append_bytes_field(out, public_key);
  return out;
}

Bytes CertificateSigningRequest::serialize() const {
  Bytes out = tbs();
  append_bytes_field(out, signature);
  return out;
}

Result<CertificateSigningRequest> CertificateSigningRequest::parse(
    ByteView data) {
  constexpr std::string_view kTag = "REVELIO-CSR-V1";
  if (data.size() < kTag.size() ||
      to_string(data.subspan(0, kTag.size())) != kTag) {
    return Error::make("pki.bad_csr_tag");
  }
  Reader r{data};
  r.off = kTag.size();
  CertificateSigningRequest csr;
  csr.subject = read_dn(r);
  const std::uint32_t san_count = r.u32();
  if (san_count > 1024) return Error::make("pki.bad_csr", "too many SANs");
  for (std::uint32_t i = 0; i < san_count && !r.failed; ++i) {
    csr.san_dns.push_back(r.str());
  }
  csr.curve_name = r.str();
  csr.public_key = r.bytes();
  csr.signature = r.bytes();
  if (r.failed) return Error::make("pki.bad_csr", "truncated CSR");
  return csr;
}

bool CertificateSigningRequest::verify() const {
  auto curve = curve_by_name(curve_name);
  if (!curve.ok()) return false;
  const auto pub = (*curve)->decode_point(public_key);
  if (!pub.ok()) return false;
  auto sig = crypto::EcdsaSignature::decode(**curve, signature);
  if (!sig.ok()) return false;
  const auto hash = crypto::sha384(tbs());
  return crypto::ecdsa_verify(**curve, *pub, hash.view(), *sig);
}

CertificateSigningRequest make_csr(const crypto::Curve& curve,
                                   const crypto::EcKeyPair& key,
                                   DistinguishedName subject,
                                   std::vector<std::string> san_dns) {
  CertificateSigningRequest csr;
  csr.subject = std::move(subject);
  csr.san_dns = std::move(san_dns);
  csr.curve_name = curve.params().name;
  csr.public_key = key.public_encoded(curve);
  const auto hash = crypto::sha384(csr.tbs());
  csr.signature = crypto::ecdsa_sign(curve, key.d, hash.view()).encode(curve);
  return csr;
}

Status verify_chain(const Certificate& leaf,
                    const std::vector<Certificate>& intermediates,
                    const std::vector<Certificate>& roots,
                    const ChainVerifyOptions& options) {
  if (roots.empty()) return Error::make("pki.no_roots");

  // Walk from the leaf upward, finding the issuer for each link.
  const Certificate* current = &leaf;
  std::vector<const Certificate*> chain{current};
  constexpr std::size_t kMaxDepth = 8;

  auto check_validity = [&](const Certificate& cert) -> Status {
    // Validity is the half-open window [not_before, not_after): a
    // certificate expiring exactly at the validation instant is already
    // expired. The closed upper bound this used to have made the expiry
    // instant itself fail open.
    if (options.now_us < cert.not_before_us ||
        options.now_us >= cert.not_after_us) {
      return Error::make("pki.cert_expired",
                         cert.subject.common_name + " outside validity");
    }
    return Status::success();
  };

  if (options.dns_name && !leaf.matches_dns(*options.dns_name)) {
    return Error::make("pki.name_mismatch",
                       "leaf does not cover " + *options.dns_name);
  }

  while (chain.size() <= kMaxDepth) {
    if (auto st = check_validity(*current); !st.ok()) return st;

    // Is the current certificate signed by a trusted root?
    for (const auto& root : roots) {
      if (current->issuer == root.subject &&
          current->verify_signature(root)) {
        if (auto st = check_validity(root); !st.ok()) return st;
        if (!root.is_ca) return Error::make("pki.root_not_ca");
        return Status::success();
      }
    }
    // Otherwise find the intermediate that issued it.
    const Certificate* next = nullptr;
    for (const auto& inter : intermediates) {
      if (current->issuer == inter.subject &&
          current->verify_signature(inter)) {
        next = &inter;
        break;
      }
    }
    if (next == nullptr) {
      return Error::make("pki.untrusted",
                         "no issuer found for " + current->subject.common_name);
    }
    if (!next->is_ca) {
      return Error::make("pki.intermediate_not_ca", next->subject.common_name);
    }
    current = next;
    chain.push_back(current);
  }
  return Error::make("pki.chain_too_long");
}

}  // namespace revelio::pki

// ACME-style automated certificate issuance (Let's Encrypt stand-in).
//
// Models the parts of the ACME flow the paper's design depends on:
//  - DNS-01 domain validation: the requester must plant a challenge token
//    in DNS, proving control of the domain — which is why the SP node (the
//    machine holding the DNS API credentials) performs issuance, not the
//    cloud-hosted VMs (§3.4.6, §5.3).
//  - Rate limits per registered domain (the paper cites Let's Encrypt's
//    limits as the reason all Revelio VMs share one certificate).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>

#include "common/sim_clock.hpp"
#include "crypto/drbg.hpp"
#include "pki/ca.hpp"

namespace revelio::pki {

/// Looks up TXT records for a DNS name. Supplied by the network layer;
/// kept as a callback so pki does not depend on net.
using DnsTxtLookup =
    std::function<std::vector<std::string>(const std::string& name)>;

struct AcmeConfig {
  // Let's Encrypt's headline limit: 50 certificates per registered domain
  // per 7 sliding days.
  std::uint32_t certs_per_domain = 50;
  std::uint64_t rate_window_us = 7ull * 24 * 3600 * 1000 * 1000;
  std::uint64_t cert_lifetime_us = 90ull * 24 * 3600 * 1000 * 1000;  // 90 days
  double issuance_latency_ms = 2900.0;  // dominated by CA-side pipeline
};

class AcmeIssuer {
 public:
  /// Builds the CA hierarchy (root + issuing intermediate) at start-up.
  AcmeIssuer(SimClock& clock, crypto::HmacDrbg& drbg, AcmeConfig config = {});

  /// Step 1: request a challenge for a domain. Returns the token the
  /// account must publish as TXT record `_acme-challenge.<domain>`.
  std::string request_challenge(const std::string& account,
                                const std::string& domain);

  /// Step 2: submit the CSR; the issuer validates the DNS challenge via
  /// `lookup` and enforces the per-domain rate limit, then issues.
  Result<Certificate> finalize(const std::string& account,
                               const CertificateSigningRequest& csr,
                               const DnsTxtLookup& lookup);

  /// Roots a relying party must pin to trust ACME-issued certificates.
  std::vector<Certificate> trusted_roots() const { return {root_cert_}; }
  /// Intermediates servers staple alongside their leaf.
  std::vector<Certificate> intermediates() const { return {issuing_cert_}; }

  /// Issued-certificate count for a registered domain within the current
  /// rate window (observability for the rate-limit ablation bench).
  std::size_t issued_in_window(const std::string& registered_domain) const;

  /// Simulated CA outage: while the virtual clock is inside
  /// [start_us, end_us), finalize() fails fast with the *transient* error
  /// `acme.unavailable` instead of issuing. Lets the chaos layer exercise
  /// the SP node's issuance retry/backoff path; challenges stay
  /// outstanding so a retry after the window succeeds.
  void set_outage_window(std::uint64_t start_us, std::uint64_t end_us);
  void clear_outage() { set_outage_window(0, 0); }

 private:
  std::string registered_domain(const std::string& fqdn) const;
  void prune_window(std::deque<std::uint64_t>& times) const;

  SimClock& clock_;
  AcmeConfig config_;
  crypto::HmacDrbg challenge_drbg_;
  std::unique_ptr<CertificateAuthority> root_ca_;
  std::unique_ptr<CertificateAuthority> issuing_ca_;
  Certificate root_cert_;
  Certificate issuing_cert_;
  // (account, domain) -> outstanding challenge token
  std::map<std::pair<std::string, std::string>, std::string> challenges_;
  std::uint64_t outage_start_us_ = 0;
  std::uint64_t outage_end_us_ = 0;
  // registered domain -> issuance timestamps (sliding window)
  mutable std::map<std::string, std::deque<std::uint64_t>> issuance_log_;
};

}  // namespace revelio::pki

// Certificate authority: a key pair plus an issuing certificate.
//
// Used three ways in the simulation: the browser-trusted web CA chain that
// the ACME issuer (Let's Encrypt stand-in) drives, the AMD endorsement
// chain (ARK self-signed root, ASK intermediate, VCEK leaves), and ad-hoc
// test CAs.
#pragma once

#include <memory>
#include <string>

#include "crypto/drbg.hpp"
#include "pki/cert.hpp"

namespace revelio::pki {

class CertificateAuthority {
 public:
  /// Creates a self-signed root CA.
  static CertificateAuthority create_root(const crypto::Curve& curve,
                                          DistinguishedName name,
                                          std::uint64_t not_before_us,
                                          std::uint64_t not_after_us,
                                          crypto::HmacDrbg& drbg);

  /// Creates a subordinate CA whose certificate is signed by `parent`.
  static CertificateAuthority create_intermediate(
      const crypto::Curve& curve, DistinguishedName name,
      std::uint64_t not_before_us, std::uint64_t not_after_us,
      CertificateAuthority& parent, crypto::HmacDrbg& drbg);

  /// Issues a leaf certificate for a verified CSR.
  Result<Certificate> issue(const CertificateSigningRequest& csr,
                            std::uint64_t not_before_us,
                            std::uint64_t not_after_us, bool is_ca = false);

  /// Issues directly for a raw public key (used for VCEKs, whose "CSR" is
  /// the chip registration inside AMD's manufacturing flow).
  Certificate issue_for_key(const std::string& curve_name, ByteView public_key,
                            DistinguishedName subject,
                            std::vector<std::string> san_dns,
                            std::uint64_t not_before_us,
                            std::uint64_t not_after_us, bool is_ca = false);

  const Certificate& certificate() const { return cert_; }
  const crypto::Curve& curve() const { return *curve_; }

 private:
  CertificateAuthority(const crypto::Curve& curve, crypto::EcKeyPair key);

  const crypto::Curve* curve_;
  crypto::EcKeyPair key_;
  Certificate cert_;
  std::uint64_t next_serial_ = 1;
};

}  // namespace revelio::pki

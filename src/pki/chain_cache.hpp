// Certificate-chain verification cache.
//
// The attestation hot path re-validates the same ARK -> ASK -> VCEK chain
// (and the same TLS server chains) on every session; the chain itself only
// changes when a certificate is re-issued or the trust roots rotate. This
// cache memoizes *successful* verify_chain results, keyed by a fingerprint
// of the exact chain bytes, the trust-root set, and the DNS-name
// constraint. A hit is only served while `now_us` stays inside the
// validity-window intersection recorded at verification time, so a cached
// success can never outlive any certificate on the path.
//
// Failures are never cached: they can be time-dependent (expiry) and are
// not on the hot path. Any change to a certificate's bytes (including its
// validity window) or to the root set changes the key, which is what
// invalidates stale entries; capacity is a bounded LRU.
//
// Two implementations sit behind the ChainVerifier interface that
// consumers (net::TlsTrustConfig, sevsnp::ReportVerifyOptions) hold a
// pointer to:
//   - ChainVerificationCache: one LRU under one mutex. Right for a single
//     client, or per-session private caches.
//   - ShardedChainCache: K independent ChainVerificationCache shards,
//     selected by the cache-key fingerprint. Same semantics, but
//     concurrent gateway sessions verifying *different* chains contend on
//     different mutexes instead of serializing on one.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "pki/cert.hpp"
#include "store/kv_store.hpp"

namespace revelio::pki {

/// Interface for anything that can stand in for verify_chain. All
/// implementations here are thread-safe: the gateway shares one verifier
/// across concurrent sessions.
class ChainVerifier {
 public:
  virtual ~ChainVerifier() = default;

  /// Drop-in replacement for verify_chain (same arguments, same verdict
  /// semantics), typically backed by a cache of prior successes.
  virtual Status verify(const Certificate& leaf,
                        const std::vector<Certificate>& intermediates,
                        const std::vector<Certificate>& roots,
                        const ChainVerifyOptions& options) = 0;
};

class ChainVerificationCache final : public ChainVerifier {
 public:
  explicit ChainVerificationCache(std::size_t capacity = 64);

  /// Returns the cached verdict when the same (chain, roots, dns
  /// constraint) verified before and now_us is inside the recorded
  /// validity intersection; otherwise verifies and caches on success.
  /// Thread-safe: lookups and insertions serialize on one internal mutex;
  /// the actual verify_chain work for a miss runs outside it (two misses
  /// of the same chain may race to verify — both succeed, one caches).
  Status verify(const Certificate& leaf,
                const std::vector<Certificate>& intermediates,
                const std::vector<Certificate>& roots,
                const ChainVerifyOptions& options) override;

  /// The fingerprint verify() keys entries by: exact bytes of every
  /// certificate supplied plus the DNS-name constraint. Public so that
  /// ShardedChainCache can hash once, route, and pass the key down.
  static crypto::Digest32 cache_key(const Certificate& leaf,
                                    const std::vector<Certificate>& inters,
                                    const std::vector<Certificate>& roots,
                                    const ChainVerifyOptions& options);

  /// verify() with the key already computed — must be the cache_key of the
  /// same arguments. Same thread-safety as verify().
  Status verify_keyed(const crypto::Digest32& key, const Certificate& leaf,
                      const std::vector<Certificate>& intermediates,
                      const std::vector<Certificate>& roots,
                      const ChainVerifyOptions& options);

  /// Durable tier behind this cache (attach_store): verified windows are
  /// written through under "chain/<fingerprint>" and consulted on an
  /// in-memory miss, so a restarted gateway skips re-verifying chains it
  /// proved in a previous run. Safe by construction: the fingerprint is
  /// recomputed from the *presented* chain bytes at lookup, so a persisted
  /// verdict can only ever apply to a byte-identical chain + root set +
  /// constraint, and the validity window is still enforced at query time.
  /// Store write failures degrade to memory-only (counted, never trusted).
  /// The store must outlive the cache.
  void attach_store(store::KvStore* kv);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Entries dropped to make room (capacity LRU eviction).
    std::uint64_t evictions = 0;
    /// Lookups that matched a key but fell outside the cached validity
    /// window (entry expired, dropped, chain re-verified).
    std::uint64_t window_rejects = 0;
    /// In-memory misses served from the durable tier without re-verifying.
    std::uint64_t store_hits = 0;
    /// Durable write-throughs that failed (entry stays memory-only).
    std::uint64_t store_write_failures = 0;
  };
  /// Per-instance counters, read under the cache mutex (safe any time).
  /// The same events are also reported process-wide through obs::metrics()
  /// as pki.chain_cache.{hit,miss,eviction,expiry}.count, aggregated
  /// across all caches.
  Stats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  struct Entry {
    std::uint64_t valid_from_us = 0;   // max(not_before) over the chain
    std::uint64_t valid_until_us = 0;  // min(not_after) over the chain
    std::list<crypto::Digest32>::iterator lru_it;
  };

  /// Inserts under the already-held mutex, evicting if needed.
  void insert_locked(const crypto::Digest32& key, std::uint64_t from,
                     std::uint64_t until);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<crypto::Digest32> lru_;  // front = most recently used
  std::map<crypto::Digest32, Entry> entries_;
  Stats stats_;
  store::KvStore* store_ = nullptr;
};

/// Lock-striped chain cache: the cache-key fingerprint picks one of
/// `shards` independent ChainVerificationCache instances, so concurrent
/// verifications of unrelated chains (different clients, different server
/// certs) proceed without sharing a mutex. Repeat verifications of the
/// same chain always land on the same shard and hit its LRU exactly like
/// the unsharded cache would. Total capacity = shards * capacity_per_shard.
class ShardedChainCache final : public ChainVerifier {
 public:
  explicit ShardedChainCache(std::size_t shards = 8,
                             std::size_t capacity_per_shard = 64);

  /// Thread-safe; hashes once, routes to the key's shard, then behaves
  /// exactly like ChainVerificationCache::verify on that shard.
  Status verify(const Certificate& leaf,
                const std::vector<Certificate>& intermediates,
                const std::vector<Certificate>& roots,
                const ChainVerifyOptions& options) override;

  /// Stats summed over all shards (each shard read under its own mutex;
  /// the sum is not a single atomic snapshot, which only matters if
  /// updates are in flight while reading).
  ChainVerificationCache::Stats stats() const;
  /// Entry count summed over all shards.
  std::size_t size() const;
  std::size_t shard_count() const { return shards_.size(); }
  /// Direct shard access for tests (distribution, per-shard eviction).
  const ChainVerificationCache& shard(std::size_t i) const {
    return *shards_[i];
  }
  void clear();

  /// Which shard a cache key routes to: first 8 bytes of the fingerprint
  /// (big-endian) modulo the shard count. Exposed for tests.
  std::size_t shard_index(const crypto::Digest32& key) const;

  /// Attaches the durable tier to every shard (they share the thread-safe
  /// store; keys cannot collide across shards since the fingerprint picks
  /// the shard). See ChainVerificationCache::attach_store.
  void attach_store(store::KvStore* kv);

 private:
  // unique_ptr: ChainVerificationCache owns a mutex, so the shard array
  // must never reallocate or copy.
  std::vector<std::unique_ptr<ChainVerificationCache>> shards_;
};

}  // namespace revelio::pki

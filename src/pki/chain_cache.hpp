// Certificate-chain verification cache.
//
// The attestation hot path re-validates the same ARK -> ASK -> VCEK chain
// (and the same TLS server chains) on every session; the chain itself only
// changes when a certificate is re-issued or the trust roots rotate. This
// cache memoizes *successful* verify_chain results, keyed by a fingerprint
// of the exact chain bytes, the trust-root set, and the DNS-name
// constraint. A hit is only served while `now_us` stays inside the
// validity-window intersection recorded at verification time, so a cached
// success can never outlive any certificate on the path.
//
// Failures are never cached: they can be time-dependent (expiry) and are
// not on the hot path. Any change to a certificate's bytes (including its
// validity window) or to the root set changes the key, which is what
// invalidates stale entries; capacity is a bounded LRU.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>

#include "pki/cert.hpp"

namespace revelio::pki {

class ChainVerificationCache {
 public:
  explicit ChainVerificationCache(std::size_t capacity = 64);

  /// Drop-in replacement for verify_chain: returns the cached verdict when
  /// the same (chain, roots, dns constraint) verified before and now_us is
  /// inside the recorded validity intersection; otherwise verifies and
  /// caches on success.
  Status verify(const Certificate& leaf,
                const std::vector<Certificate>& intermediates,
                const std::vector<Certificate>& roots,
                const ChainVerifyOptions& options);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Entries dropped to make room (capacity LRU eviction).
    std::uint64_t evictions = 0;
    /// Lookups that matched a key but fell outside the cached validity
    /// window (entry expired, dropped, chain re-verified).
    std::uint64_t window_rejects = 0;
  };
  /// Per-instance counters. The same events are also reported process-wide
  /// through obs::metrics() as pki.chain_cache.{hit,miss,eviction,expiry}
  /// .count, aggregated across all caches.
  Stats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  struct Entry {
    std::uint64_t valid_from_us = 0;   // max(not_before) over the chain
    std::uint64_t valid_until_us = 0;  // min(not_after) over the chain
    std::list<crypto::Digest32>::iterator lru_it;
  };

  static crypto::Digest32 cache_key(
      const Certificate& leaf, const std::vector<Certificate>& intermediates,
      const std::vector<Certificate>& roots, const ChainVerifyOptions& options);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<crypto::Digest32> lru_;  // front = most recently used
  std::map<crypto::Digest32, Entry> entries_;
  Stats stats_;
};

}  // namespace revelio::pki

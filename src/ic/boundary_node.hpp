// Boundary node: HTTP <-> IC protocol translation proxy (§4.2).
//
// Translates ordinary web requests into canister calls and wraps certified
// responses back into HTTP. It also serves the verifying service worker.
// A boundary node sits outside the IC's Byzantine fault tolerance — a
// malicious one can tamper with responses or hand out a doctored service
// worker, which is exactly why the paper runs it inside a Revelio VM. The
// tamper knobs here let tests and benches demonstrate both the attack and
// the two defences (client-side certificate verification, Revelio
// attestation of the BN itself).
#pragma once

#include "ic/subnet.hpp"
#include "net/http.hpp"

namespace revelio::ic {

/// Misbehaviours of a compromised boundary node.
enum class BnTamperMode {
  kHonest,
  kTamperResponses,     // flip bytes in canister replies
  kStripCertificates,   // drop the certificate so clients cannot verify
  kServeDoctoredWorker, // hand out a service worker that skips verification
};

class BoundaryNode {
 public:
  explicit BoundaryNode(Subnet& subnet)
      : subnet_(&subnet) {}

  void set_tamper_mode(BnTamperMode mode) { tamper_ = mode; }

  /// The HTTP entry point.
  ///   GET  /sw.js                              -> verifying service worker
  ///   GET  /api/{canister}/query/{method}      -> certified query
  ///   POST /api/{canister}/update/{method}     -> certified update
  ///   GET  /assets/{canister}{path}            -> asset canister content
  /// API responses carry the serialized certificate in the
  /// "ic-certificate" header (hex) unless the BN strips it.
  net::HttpResponse handle(const net::HttpRequest& request);

  /// Reference service worker body — what an *honest* BN serves. Clients
  /// (and Revelio's measurement of the BN image) pin this content.
  static Bytes reference_service_worker();

 private:
  net::HttpResponse certified_to_http(Result<CertifiedResponse> result);

  /// Routing body; handle() wraps it with the bn.request span + metrics and
  /// receives the matched route class ("sw" | "api" | "assets" | "other").
  net::HttpResponse handle_routed(const net::HttpRequest& request,
                                  std::string& route);

  Subnet* subnet_;
  BnTamperMode tamper_ = BnTamperMode::kHonest;
};

/// Client-side verification logic the service worker embeds: checks the
/// certificate on an HTTP response from a boundary node.
Status verify_bn_response(const net::HttpResponse& response,
                          const std::map<ReplicaId, Bytes>& subnet_keys,
                          std::uint32_t threshold);

}  // namespace revelio::ic

#include "ic/shamir.hpp"

namespace revelio::ic {

namespace {

const crypto::MontCtx& field() { return crypto::p256().scalar_field(); }

/// Evaluates the polynomial (coefficients in plain domain) at x via Horner.
crypto::U384 eval_poly(const std::vector<crypto::U384>& coeffs,
                       std::uint32_t x) {
  const auto& fn = field();
  const crypto::U384 x_mont = fn.to_mont(crypto::U384::from_u64(x));
  crypto::U384 acc = fn.to_mont(crypto::U384::zero());
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = fn.mul(acc, x_mont);
    acc = fn.add(acc, fn.to_mont(coeffs[i]));
  }
  return fn.from_mont(acc);
}

}  // namespace

Result<std::vector<SecretShare>> shamir_split(const crypto::U384& secret,
                                              std::uint32_t threshold,
                                              std::uint32_t share_count,
                                              crypto::HmacDrbg& drbg) {
  if (threshold == 0 || threshold > share_count) {
    return Error::make("shamir.bad_threshold");
  }
  if (secret.cmp(crypto::p256().params().n) >= 0) {
    return Error::make("shamir.secret_out_of_range");
  }
  // Polynomial of degree threshold-1 with the secret as constant term.
  std::vector<crypto::U384> coeffs;
  coeffs.push_back(secret);
  for (std::uint32_t i = 1; i < threshold; ++i) {
    // Rejection-sample a uniform coefficient below n.
    while (true) {
      const crypto::U384 c = crypto::U384::from_bytes_be(drbg.generate(32));
      if (c.cmp(crypto::p256().params().n) < 0) {
        coeffs.push_back(c);
        break;
      }
    }
  }
  std::vector<SecretShare> shares;
  shares.reserve(share_count);
  for (std::uint32_t i = 1; i <= share_count; ++i) {
    shares.push_back(SecretShare{i, eval_poly(coeffs, i)});
  }
  return shares;
}

Result<crypto::U384> shamir_recover(const std::vector<SecretShare>& shares) {
  if (shares.empty()) return Error::make("shamir.no_shares");
  for (std::size_t i = 0; i < shares.size(); ++i) {
    if (shares[i].index == 0) return Error::make("shamir.bad_index");
    for (std::size_t j = i + 1; j < shares.size(); ++j) {
      if (shares[i].index == shares[j].index) {
        return Error::make("shamir.duplicate_index");
      }
    }
  }
  const auto& fn = field();
  crypto::U384 acc = fn.to_mont(crypto::U384::zero());
  for (std::size_t i = 0; i < shares.size(); ++i) {
    // Lagrange basis at x=0: prod_{j!=i} x_j / (x_j - x_i).
    crypto::U384 num = fn.one();
    crypto::U384 den = fn.one();
    const crypto::U384 xi = fn.to_mont(crypto::U384::from_u64(shares[i].index));
    for (std::size_t j = 0; j < shares.size(); ++j) {
      if (j == i) continue;
      const crypto::U384 xj =
          fn.to_mont(crypto::U384::from_u64(shares[j].index));
      num = fn.mul(num, xj);
      den = fn.mul(den, fn.sub(xj, xi));
    }
    const crypto::U384 basis = fn.mul(num, fn.inv(den));
    acc = fn.add(acc, fn.mul(fn.to_mont(shares[i].value), basis));
  }
  return fn.from_mont(acc);
}

}  // namespace revelio::ic

#include "ic/subnet.hpp"

#include <algorithm>

namespace revelio::ic {

namespace {

void append_string(Bytes& out, const std::string& s) {
  append_u32be(out, static_cast<std::uint32_t>(s.size()));
  append(out, s);
}

}  // namespace

crypto::Digest32 Certificate::signed_digest() const {
  crypto::Sha256 h;
  h.update(to_bytes(std::string_view("ic-certificate-v1")));
  Bytes fields;
  append_u64be(fields, round);
  h.update(fields);
  h.update(state_root.view());
  h.update(response_hash.view());
  Bytes names;
  append_string(names, canister);
  append_string(names, method);
  h.update(names);
  return h.finish();
}

Bytes Certificate::serialize() const {
  Bytes out;
  append(out, std::string_view("ICRT1"));
  append_u64be(out, round);
  append(out, state_root.view());
  append(out, response_hash.view());
  append_string(out, canister);
  append_string(out, method);
  append_u32be(out, static_cast<std::uint32_t>(signatures.size()));
  for (const auto& [id, sig] : signatures) {
    append_u32be(out, id);
    append_u32be(out, static_cast<std::uint32_t>(sig.size()));
    append(out, sig);
  }
  return out;
}

Result<Certificate> Certificate::parse(ByteView data) {
  if (data.size() < 5 || to_string(data.subspan(0, 5)) != "ICRT1") {
    return Error::make("ic.bad_certificate");
  }
  std::size_t off = 5;
  auto need = [&](std::size_t n) { return off + n <= data.size(); };
  if (!need(8 + 32 + 32)) return Error::make("ic.bad_certificate");
  Certificate cert;
  cert.round = read_u64be(data, off);
  off += 8;
  cert.state_root = crypto::Digest32::from(data.subspan(off, 32));
  off += 32;
  cert.response_hash = crypto::Digest32::from(data.subspan(off, 32));
  off += 32;
  auto read_string = [&](std::string& out) {
    if (!need(4)) return false;
    const std::uint32_t len = read_u32be(data, off);
    off += 4;
    if (!need(len)) return false;
    out.assign(data.begin() + static_cast<std::ptrdiff_t>(off),
               data.begin() + static_cast<std::ptrdiff_t>(off + len));
    off += len;
    return true;
  };
  if (!read_string(cert.canister) || !read_string(cert.method)) {
    return Error::make("ic.bad_certificate");
  }
  if (!need(4)) return Error::make("ic.bad_certificate");
  const std::uint32_t sig_count = read_u32be(data, off);
  off += 4;
  if (sig_count > 1024) return Error::make("ic.bad_certificate");
  for (std::uint32_t i = 0; i < sig_count; ++i) {
    if (!need(8)) return Error::make("ic.bad_certificate");
    const std::uint32_t id = read_u32be(data, off);
    off += 4;
    const std::uint32_t sig_len = read_u32be(data, off);
    off += 4;
    if (!need(sig_len)) return Error::make("ic.bad_certificate");
    cert.signatures.emplace_back(id, to_bytes(data.subspan(off, sig_len)));
    off += sig_len;
  }
  return cert;
}

void Replica::install_canister(const CanisterId& id,
                               std::unique_ptr<Canister> canister) {
  canisters_[id] = std::move(canister);
}

Result<Bytes> Replica::execute_update(const CanisterId& id,
                                      const std::string& method,
                                      ByteView arg) {
  const auto it = canisters_.find(id);
  if (it == canisters_.end()) return Error::make("ic.no_such_canister", id);
  auto result = it->second->update(method, arg);
  if (!result.ok()) return result;
  if (mode_ == ByzantineMode::kCorruptExecution) {
    // Wrong result, confidently signed.
    Bytes corrupted = *result;
    corrupted.push_back(0xEE);
    return corrupted;
  }
  return result;
}

Result<Bytes> Replica::execute_query(const CanisterId& id,
                                     const std::string& method,
                                     ByteView arg) const {
  const auto it = canisters_.find(id);
  if (it == canisters_.end()) return Error::make("ic.no_such_canister", id);
  auto result = it->second->query(method, arg);
  if (!result.ok()) return result;
  if (mode_ == ByzantineMode::kCorruptExecution) {
    Bytes corrupted = *result;
    corrupted.push_back(0xEE);
    return corrupted;
  }
  return result;
}

crypto::Digest32 Replica::state_root() const {
  crypto::Sha256 h;
  h.update(to_bytes(std::string_view("state-root")));
  for (const auto& [id, canister] : canisters_) {
    Bytes len;
    append_u32be(len, static_cast<std::uint32_t>(id.size()));
    h.update(len);
    h.update(to_bytes(id));
    h.update(canister->state_hash().view());
  }
  return h.finish();
}

std::optional<Bytes> Replica::sign(const crypto::Digest32& digest,
                                   crypto::HmacDrbg& garbage_source) {
  switch (mode_) {
    case ByzantineMode::kSilent:
      return std::nullopt;
    case ByzantineMode::kSignGarbage: {
      const Bytes garbage = garbage_source.generate(32);
      return crypto::ecdsa_sign(crypto::p256(), key_.d, garbage)
          .encode(crypto::p256());
    }
    default:
      return crypto::ecdsa_sign(crypto::p256(), key_.d, digest.view())
          .encode(crypto::p256());
  }
}

Subnet::Subnet(std::uint32_t f, crypto::HmacDrbg& drbg)
    : f_(f), garbage_drbg_(drbg.generate(32),
                           to_bytes(std::string_view("byzantine-garbage"))) {
  const std::uint32_t n = 3 * f + 1;
  for (std::uint32_t i = 0; i < n; ++i) {
    replicas_.push_back(std::make_unique<Replica>(
        i, crypto::ec_generate(crypto::p256(), drbg)));
  }
}

void Subnet::install_canister(const CanisterId& id,
                              const Canister& prototype) {
  for (auto& replica : replicas_) {
    replica->install_canister(id, prototype.clone());
  }
}

void Subnet::set_byzantine(ReplicaId id, ByzantineMode mode) {
  if (id < replicas_.size()) replicas_[id]->set_byzantine(mode);
}

std::map<ReplicaId, Bytes> Subnet::public_keys() const {
  std::map<ReplicaId, Bytes> keys;
  for (const auto& replica : replicas_) {
    keys[replica->id()] = replica->public_key();
  }
  return keys;
}

Result<CertifiedResponse> Subnet::certify(const CanisterId& id,
                                          const std::string& method,
                                          bool is_update, ByteView arg) {
  ++round_;
  // 1. Execute on every replica; bucket identical (response, root) pairs.
  struct Outcome {
    Bytes reply;
    crypto::Digest32 root;
  };
  std::vector<std::optional<Outcome>> outcomes(replicas_.size());
  std::map<Bytes, std::vector<ReplicaId>> buckets;  // key: reply||root
  for (auto& replica : replicas_) {
    Result<Bytes> result =
        is_update ? replica->execute_update(id, method, arg)
                  : replica->execute_query(id, method, arg);
    if (!result.ok()) continue;  // replica rejects; abstains
    Outcome outcome{*result, replica->state_root()};
    Bytes key = concat(outcome.reply, outcome.root.view());
    buckets[key].push_back(replica->id());
    outcomes[replica->id()] = std::move(outcome);
  }
  // 2. Find the agreement class of size >= threshold.
  const std::vector<ReplicaId>* agreeing = nullptr;
  for (const auto& [key, members] : buckets) {
    if (members.size() >= threshold()) {
      agreeing = &members;
      break;
    }
  }
  if (agreeing == nullptr) {
    return Error::make("ic.no_agreement",
                       "fewer than 2f+1 replicas agree on a result");
  }
  const Outcome& agreed = *outcomes[(*agreeing)[0]];

  // 3. Collect signature shares from the agreeing replicas.
  Certificate cert;
  cert.round = round_;
  cert.state_root = agreed.root;
  cert.response_hash = crypto::sha256(agreed.reply);
  cert.canister = id;
  cert.method = method;
  const crypto::Digest32 digest = cert.signed_digest();
  for (ReplicaId rid : *agreeing) {
    if (cert.signatures.size() >= threshold()) break;
    auto sig = replicas_[rid]->sign(digest, garbage_drbg_);
    if (sig) cert.signatures.emplace_back(rid, std::move(*sig));
  }
  if (cert.signatures.size() < threshold()) {
    return Error::make("ic.certification_failed",
                       "could not collect 2f+1 signature shares");
  }
  return CertifiedResponse{agreed.reply, std::move(cert)};
}

Result<CertifiedResponse> Subnet::update(const CanisterId& id,
                                         const std::string& method,
                                         ByteView arg) {
  return certify(id, method, /*is_update=*/true, arg);
}

Result<CertifiedResponse> Subnet::query(const CanisterId& id,
                                        const std::string& method,
                                        ByteView arg) {
  return certify(id, method, /*is_update=*/false, arg);
}

Status verify_certificate(const Certificate& cert, ByteView reply,
                          const std::map<ReplicaId, Bytes>& public_keys,
                          std::uint32_t threshold) {
  if (!(crypto::sha256(reply) == cert.response_hash)) {
    return Error::make("ic.reply_mismatch",
                       "reply does not hash to the certified value");
  }
  const crypto::Digest32 digest = cert.signed_digest();
  std::vector<ReplicaId> seen;
  std::uint32_t valid = 0;
  for (const auto& [id, sig_bytes] : cert.signatures) {
    if (std::find(seen.begin(), seen.end(), id) != seen.end()) {
      return Error::make("ic.duplicate_signer", std::to_string(id));
    }
    seen.push_back(id);
    const auto key_it = public_keys.find(id);
    if (key_it == public_keys.end()) continue;  // unknown signer: ignore
    const auto pub = crypto::p256().decode_point(key_it->second);
    if (!pub.ok()) continue;
    auto sig = crypto::EcdsaSignature::decode(crypto::p256(), sig_bytes);
    if (!sig.ok()) continue;
    if (crypto::ecdsa_verify(crypto::p256(), *pub, digest.view(), *sig)) {
      ++valid;
    }
  }
  if (valid < threshold) {
    return Error::make("ic.insufficient_signatures",
                       std::to_string(valid) + " valid, need " +
                           std::to_string(threshold));
  }
  return Status::success();
}

}  // namespace revelio::ic

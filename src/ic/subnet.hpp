// Subnets: replicated, Byzantine-fault-tolerant canister execution.
//
// A subnet of n = 3f+1 replicas executes every update deterministically on
// each replica and certifies the (response, state root) that at least
// 2f+1 replicas agree on. A certificate — the threshold-signed artefact
// end-users (or the verifying service worker) check — consists of 2f+1
// replica signatures over the same digest; with at most f Byzantine
// replicas no certificate over a wrong result can form (§4.2).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/drbg.hpp"
#include "crypto/ecdsa.hpp"
#include "ic/canister.hpp"

namespace revelio::ic {

using ReplicaId = std::uint32_t;

/// Failure behaviours a test can inject into a replica.
enum class ByzantineMode {
  kHonest,
  kSilent,            // refuses to sign
  kCorruptExecution,  // computes wrong results (and signs them)
  kSignGarbage,       // signs random digests
};

struct Certificate {
  std::uint64_t round = 0;
  crypto::Digest32 state_root;
  crypto::Digest32 response_hash;
  CanisterId canister;
  std::string method;
  std::vector<std::pair<ReplicaId, Bytes>> signatures;

  /// Digest every replica signs.
  crypto::Digest32 signed_digest() const;

  Bytes serialize() const;
  static Result<Certificate> parse(ByteView data);
};

struct CertifiedResponse {
  Bytes reply;
  Certificate certificate;
};

/// One replica: full copy of every canister plus a signing identity.
class Replica {
 public:
  Replica(ReplicaId id, crypto::EcKeyPair key)
      : id_(id), key_(std::move(key)) {}

  ReplicaId id() const { return id_; }
  Bytes public_key() const {
    return key_.public_encoded(crypto::p256());
  }
  void set_byzantine(ByzantineMode mode) { mode_ = mode; }
  ByzantineMode byzantine_mode() const { return mode_; }

  void install_canister(const CanisterId& id,
                        std::unique_ptr<Canister> canister);
  Result<Bytes> execute_update(const CanisterId& id, const std::string& method,
                               ByteView arg);
  Result<Bytes> execute_query(const CanisterId& id, const std::string& method,
                              ByteView arg) const;
  crypto::Digest32 state_root() const;

  /// Signature share over a certificate digest (or garbage, if Byzantine).
  std::optional<Bytes> sign(const crypto::Digest32& digest,
                            crypto::HmacDrbg& garbage_source);

 private:
  ReplicaId id_;
  crypto::EcKeyPair key_;
  ByzantineMode mode_ = ByzantineMode::kHonest;
  std::map<CanisterId, std::unique_ptr<Canister>> canisters_;
};

class Subnet {
 public:
  /// n = 3f+1 replicas tolerating f Byzantine; threshold 2f+1.
  Subnet(std::uint32_t f, crypto::HmacDrbg& drbg);

  std::uint32_t replica_count() const {
    return static_cast<std::uint32_t>(replicas_.size());
  }
  std::uint32_t threshold() const { return 2 * f_ + 1; }

  /// Installs a canister by cloning the prototype to every replica.
  void install_canister(const CanisterId& id, const Canister& prototype);

  /// Replicated update: executes everywhere, certifies the agreed result.
  Result<CertifiedResponse> update(const CanisterId& id,
                                   const std::string& method, ByteView arg);

  /// Certified query: read-only, but still certified so a client behind an
  /// untrusted proxy can verify the answer.
  Result<CertifiedResponse> query(const CanisterId& id,
                                  const std::string& method, ByteView arg);

  void set_byzantine(ReplicaId id, ByzantineMode mode);

  /// The "subnet registry": replica public keys a verifier pins.
  std::map<ReplicaId, Bytes> public_keys() const;

  std::uint64_t current_round() const { return round_; }

 private:
  Result<CertifiedResponse> certify(const CanisterId& id,
                                    const std::string& method,
                                    bool is_update, ByteView arg);

  std::uint32_t f_;
  std::uint64_t round_ = 0;
  std::vector<std::unique_ptr<Replica>> replicas_;
  crypto::HmacDrbg garbage_drbg_;
};

/// Client-side certificate verification against pinned replica keys.
Status verify_certificate(const Certificate& cert, ByteView reply,
                          const std::map<ReplicaId, Bytes>& public_keys,
                          std::uint32_t threshold);

}  // namespace revelio::ic

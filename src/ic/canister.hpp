// Canisters: the IC's smart contracts as deterministic state machines.
//
// A canister exposes update calls (go through consensus, mutate state) and
// query calls (read-only). Replicas each hold an instance and must arrive
// at identical state — the determinism the certification scheme hinges on.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/sha2.hpp"

namespace revelio::ic {

using CanisterId = std::string;

class Canister {
 public:
  virtual ~Canister() = default;

  /// Mutating call; must be deterministic in (state, method, arg).
  virtual Result<Bytes> update(const std::string& method, ByteView arg) = 0;

  /// Read-only call.
  virtual Result<Bytes> query(const std::string& method,
                              ByteView arg) const = 0;

  /// Canonical digest of the full canister state.
  virtual crypto::Digest32 state_hash() const = 0;

  /// Deep copy (each replica holds its own instance).
  virtual std::unique_ptr<Canister> clone() const = 0;
};

/// Key-value store canister: set/get/delete/len.
class KeyValueCanister final : public Canister {
 public:
  Result<Bytes> update(const std::string& method, ByteView arg) override;
  Result<Bytes> query(const std::string& method, ByteView arg) const override;
  crypto::Digest32 state_hash() const override;
  std::unique_ptr<Canister> clone() const override {
    return std::make_unique<KeyValueCanister>(*this);
  }

 private:
  std::map<std::string, Bytes> entries_;
};

/// Counter canister: increment/add/get — the classic demo contract.
class CounterCanister final : public Canister {
 public:
  Result<Bytes> update(const std::string& method, ByteView arg) override;
  Result<Bytes> query(const std::string& method, ByteView arg) const override;
  crypto::Digest32 state_hash() const override;
  std::unique_ptr<Canister> clone() const override {
    return std::make_unique<CounterCanister>(*this);
  }

 private:
  std::uint64_t value_ = 0;
};

/// Asset canister: serves immutable web assets (the dapp frontends and the
/// verifying service worker come from one of these).
class AssetCanister final : public Canister {
 public:
  /// Pre-loads an asset at deployment time (before replication starts).
  void deploy_asset(const std::string& path, Bytes content,
                    std::string content_type = "text/plain");

  Result<Bytes> update(const std::string& method, ByteView arg) override;
  Result<Bytes> query(const std::string& method, ByteView arg) const override;
  crypto::Digest32 state_hash() const override;
  std::unique_ptr<Canister> clone() const override {
    return std::make_unique<AssetCanister>(*this);
  }

 private:
  struct Asset {
    Bytes content;
    std::string content_type;
  };
  std::map<std::string, Asset> assets_;
};

}  // namespace revelio::ic

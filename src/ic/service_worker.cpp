#include "ic/service_worker.hpp"

namespace revelio::ic {

crypto::Digest32 ServiceWorkerClient::reference_digest() {
  return crypto::sha256(BoundaryNode::reference_service_worker());
}

Result<ServiceWorkerClient> ServiceWorkerClient::install(
    ByteView worker_body, const crypto::Digest32& pinned_digest,
    std::map<ReplicaId, Bytes> subnet_keys, std::uint32_t threshold) {
  if (!(crypto::sha256(worker_body) == pinned_digest)) {
    return Error::make("sw.digest_mismatch",
                       "served worker does not match the pinned digest");
  }
  return ServiceWorkerClient(std::move(subnet_keys), threshold);
}

Result<net::HttpResponse> ServiceWorkerClient::process(
    net::HttpResponse response) {
  const auto st = verify_bn_response(response, subnet_keys_, threshold_);
  if (!st.ok()) {
    ++rejected_;
    return Error::make("sw.verification_failed", st.error().to_string());
  }
  ++verified_;
  return response;
}

BnFleetClient::BnFleetClient(net::Network& network, net::Address client,
                             std::vector<net::Address> replicas,
                             ServiceWorkerClient worker, Config config)
    : network_(&network),
      client_(std::move(client)),
      worker_(std::move(worker)),
      failover_(std::move(replicas), config.breaker, "bn"),
      config_(config),
      retry_jitter_(to_bytes("bn-fleet-retry-jitter"),
                    to_bytes(client_.host)) {}

Result<net::HttpResponse> BnFleetClient::call(
    const net::HttpRequest& request) {
  obs::Span span("ic.bn_fleet_call");
  span.attr("path", request.path);
  SimClock& clock = network_->clock();
  auto result = net::with_retries(
      clock, retry_jitter_, config_.retry, net::Deadline::unlimited(),
      "ic.bn_call", [&]() -> Result<net::HttpResponse> {
        return failover_.execute(
            clock, [&](const net::Address& bn) -> Result<net::HttpResponse> {
              auto raw = network_->call(client_, bn, request.serialize());
              if (!raw.ok()) return raw.error();
              auto response = net::HttpResponse::parse(*raw);
              if (!response.ok()) return response.error();
              // Threshold verification happens before the response counts
              // as a success against the replica's breaker.
              return worker_.process(std::move(*response));
            });
      });
  span.attr("result", result.ok() ? "ok" : result.error().code);
  return result;
}

Result<net::HttpResponse> BnFleetClient::get(const std::string& path) {
  net::HttpRequest request;
  request.method = "GET";
  request.path = path;
  request.host = failover_.replicas().empty()
                     ? client_.host
                     : failover_.replicas().front().host;
  return call(request);
}

}  // namespace revelio::ic

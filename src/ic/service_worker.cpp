#include "ic/service_worker.hpp"

namespace revelio::ic {

crypto::Digest32 ServiceWorkerClient::reference_digest() {
  return crypto::sha256(BoundaryNode::reference_service_worker());
}

Result<ServiceWorkerClient> ServiceWorkerClient::install(
    ByteView worker_body, const crypto::Digest32& pinned_digest,
    std::map<ReplicaId, Bytes> subnet_keys, std::uint32_t threshold) {
  if (!(crypto::sha256(worker_body) == pinned_digest)) {
    return Error::make("sw.digest_mismatch",
                       "served worker does not match the pinned digest");
  }
  return ServiceWorkerClient(std::move(subnet_keys), threshold);
}

Result<net::HttpResponse> ServiceWorkerClient::process(
    net::HttpResponse response) {
  const auto st = verify_bn_response(response, subnet_keys_, threshold_);
  if (!st.ok()) {
    ++rejected_;
    return Error::make("sw.verification_failed", st.error().to_string());
  }
  ++verified_;
  return response;
}

}  // namespace revelio::ic

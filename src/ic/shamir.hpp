// Shamir secret sharing over the P-256 scalar field.
//
// Used by the mini-IC for subnet key dealing: a dealer splits the subnet
// signing key into n shares with threshold t; any t shares reconstruct,
// any t-1 reveal nothing. (The full IC uses non-interactive DKG; dealing
// is the classical substrate underneath.)
#pragma once

#include <vector>

#include "common/result.hpp"
#include "crypto/drbg.hpp"
#include "crypto/ec.hpp"

namespace revelio::ic {

struct SecretShare {
  std::uint32_t index = 0;  // x-coordinate (1-based; 0 is the secret)
  crypto::U384 value;
};

/// Splits `secret` (a scalar mod n of P-256) into `share_count` shares,
/// any `threshold` of which reconstruct it.
Result<std::vector<SecretShare>> shamir_split(const crypto::U384& secret,
                                              std::uint32_t threshold,
                                              std::uint32_t share_count,
                                              crypto::HmacDrbg& drbg);

/// Reconstructs the secret from >= threshold distinct shares via Lagrange
/// interpolation at x=0. The caller is responsible for supplying enough
/// shares; inconsistent/fewer shares yield a wrong (not detected) secret,
/// as in the classical scheme.
Result<crypto::U384> shamir_recover(const std::vector<SecretShare>& shares);

}  // namespace revelio::ic

#include "ic/boundary_node.hpp"

#include <chrono>

#include "common/hex.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace revelio::ic {

namespace {

/// Splits "/api/{canister}/{kind}/{method}" -> (canister, kind, method).
struct ApiPath {
  std::string canister;
  std::string kind;
  std::string method;
};

std::optional<ApiPath> parse_api_path(const std::string& path) {
  if (path.rfind("/api/", 0) != 0) return std::nullopt;
  const std::string rest = path.substr(5);
  const auto slash1 = rest.find('/');
  if (slash1 == std::string::npos) return std::nullopt;
  const auto slash2 = rest.find('/', slash1 + 1);
  if (slash2 == std::string::npos) return std::nullopt;
  ApiPath out;
  out.canister = rest.substr(0, slash1);
  out.kind = rest.substr(slash1 + 1, slash2 - slash1 - 1);
  out.method = rest.substr(slash2 + 1);
  if (out.canister.empty() || out.method.empty()) return std::nullopt;
  return out;
}

}  // namespace

Bytes BoundaryNode::reference_service_worker() {
  // A behavioural description of the worker, not real JS: the bytes stand
  // in for the script the browser would execute, and — like every blob in
  // this simulation — the bytes *are* the behaviour, so pinning/measuring
  // them pins the behaviour.
  return to_bytes(std::string_view(
      "// ic-service-worker v1\n"
      "// intercepts fetch(), transforms to IC calls, verifies the\n"
      "// ic-certificate header against the pinned subnet keys, rejects\n"
      "// responses whose certificate is missing or invalid\n"
      "verify_certificates=true\n"));
}

net::HttpResponse BoundaryNode::certified_to_http(
    Result<CertifiedResponse> result) {
  if (!result.ok()) {
    return net::HttpResponse::error(502, result.error().to_string());
  }
  net::HttpResponse response =
      net::HttpResponse::ok(result->reply, "application/octet-stream");
  if (tamper_ == BnTamperMode::kTamperResponses && !response.body.empty()) {
    response.body[0] ^= 0x01;
  }
  if (tamper_ != BnTamperMode::kStripCertificates) {
    response.headers["ic-certificate"] =
        to_hex(result->certificate.serialize());
  }
  return response;
}

net::HttpResponse BoundaryNode::handle(const net::HttpRequest& request) {
  obs::Span span("bn.request");
  span.attr("method", request.method);
  span.attr("path", request.path);
  const auto t0 = std::chrono::steady_clock::now();
  std::string route = "other";
  net::HttpResponse response = handle_routed(request, route);
  span.attr("route", route);
  span.attr("status", static_cast<std::uint64_t>(response.status));
  const double real_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count();
  obs::metrics()
      .counter("bn.request.count",
               {{"status", std::to_string(response.status)}})
      .inc();
  obs::metrics()
      .histogram("bn.request.real_us",
                 {50, 100, 250, 500, 1000, 2500, 5000, 10000})
      .observe(real_us);
  return response;
}

net::HttpResponse BoundaryNode::handle_routed(const net::HttpRequest& request,
                                              std::string& route) {
  if (request.method == "GET" && request.path == "/sw.js") {
    route = "sw";
    Bytes worker = reference_service_worker();
    if (tamper_ == BnTamperMode::kServeDoctoredWorker) {
      worker = to_bytes(std::string_view(
          "// ic-service-worker v1 (doctored)\n"
          "verify_certificates=false\n"));
    }
    return net::HttpResponse::ok(std::move(worker), "text/javascript");
  }

  if (const auto api = parse_api_path(request.path)) {
    route = "api";
    if (api->kind == "query" && request.method == "GET") {
      return certified_to_http(
          subnet_->query(api->canister, api->method, request.body));
    }
    if (api->kind == "update" && request.method == "POST") {
      return certified_to_http(
          subnet_->update(api->canister, api->method, request.body));
    }
    return net::HttpResponse::error(405, "unsupported api call");
  }

  if (request.method == "GET" && request.path.rfind("/assets/", 0) == 0) {
    route = "assets";
    // /assets/{canister}/{path...}
    const std::string rest = request.path.substr(8);
    const auto slash = rest.find('/');
    if (slash == std::string::npos) {
      return net::HttpResponse::error(400, "missing asset path");
    }
    const std::string canister = rest.substr(0, slash);
    const std::string asset_path = rest.substr(slash);
    Bytes arg = to_bytes(asset_path);
    arg.push_back(0);
    auto result = subnet_->query(canister, "http_request", arg);
    if (!result.ok()) {
      return net::HttpResponse::error(404, result.error().to_string());
    }
    // Reply layout: content_type \0 body.
    const ByteView reply = result->reply;
    std::size_t nul = 0;
    while (nul < reply.size() && reply[nul] != 0) ++nul;
    net::HttpResponse response = net::HttpResponse::ok(
        to_bytes(reply.subspan(std::min(nul + 1, reply.size()))),
        to_string(reply.subspan(0, nul)));
    if (tamper_ == BnTamperMode::kTamperResponses && !response.body.empty()) {
      response.body[0] ^= 0x01;
    }
    if (tamper_ != BnTamperMode::kStripCertificates) {
      response.headers["ic-certificate"] =
          to_hex(result->certificate.serialize());
    }
    return response;
  }

  return net::HttpResponse::not_found();
}

Status verify_bn_response(const net::HttpResponse& response,
                          const std::map<ReplicaId, Bytes>& subnet_keys,
                          std::uint32_t threshold) {
  const auto it = response.headers.find("ic-certificate");
  if (it == response.headers.end()) {
    return Error::make("ic.missing_certificate",
                       "boundary node returned no certificate");
  }
  const auto cert_bytes = from_hex(it->second);
  if (!cert_bytes) return Error::make("ic.bad_certificate", "hex");
  auto cert = Certificate::parse(*cert_bytes);
  if (!cert.ok()) return cert.error();
  // For asset responses the certified reply is content_type \0 body; for
  // API responses it is the body itself. Try both bindings.
  if (verify_certificate(*cert, response.body, subnet_keys, threshold).ok()) {
    return Status::success();
  }
  const auto ct = response.headers.find("content-type");
  if (ct != response.headers.end()) {
    Bytes reconstructed = to_bytes(ct->second);
    reconstructed.push_back(0);
    append(reconstructed, response.body);
    return verify_certificate(*cert, reconstructed, subnet_keys, threshold);
  }
  return Error::make("ic.reply_mismatch");
}

}  // namespace revelio::ic

// Client-side verifying service worker (§4.2).
//
// On first contact a boundary node hands the browser a service worker;
// once active, the worker transforms requests into IC calls and — the
// security-relevant part — verifies the threshold certificate on every
// response, so even a fully malicious BN cannot alter canister data
// undetected. Installation itself is the bootstrapping gap ("an initial
// untampered contact"): the worker body must match a pinned digest, which
// in the paper is exactly what Revelio's measured BN image guarantees.
#pragma once

#include "ic/boundary_node.hpp"
#include "net/resilience.hpp"

namespace revelio::ic {

class ServiceWorkerClient {
 public:
  /// Installs a worker delivered by a BN. Fails if the body does not match
  /// the pinned digest (a doctored worker with verification disabled).
  static Result<ServiceWorkerClient> install(
      ByteView worker_body, const crypto::Digest32& pinned_digest,
      std::map<ReplicaId, Bytes> subnet_keys, std::uint32_t threshold);

  /// The digest of the reference worker (what an auditor would pin).
  static crypto::Digest32 reference_digest();

  /// Processes a BN response the way the active worker does: verifies the
  /// certificate and passes the response through, or blocks it.
  Result<net::HttpResponse> process(net::HttpResponse response);

  std::uint64_t verified_count() const { return verified_; }
  std::uint64_t rejected_count() const { return rejected_; }

 private:
  ServiceWorkerClient(std::map<ReplicaId, Bytes> subnet_keys,
                      std::uint32_t threshold)
      : subnet_keys_(std::move(subnet_keys)), threshold_(threshold) {}

  std::map<ReplicaId, Bytes> subnet_keys_;
  std::uint32_t threshold_;
  std::uint64_t verified_ = 0;
  std::uint64_t rejected_ = 0;
};

/// Resilient client over a fleet of boundary-node replicas.
///
/// Wraps every call in retry + per-replica circuit breakers + ordered
/// failover, and pushes each response through the installed service worker
/// before handing it back. The split of responsibilities is deliberate:
/// transport losses (drops, blackholed BNs) are retried and failed over,
/// but a response that FAILS THRESHOLD VERIFICATION is returned as the
/// permanent error `sw.verification_failed` without trying another
/// replica — a tampered certificate is an attack verdict, not an outage.
class BnFleetClient {
 public:
  struct Config {
    net::RetryPolicy retry;
    net::CircuitBreaker::Config breaker;
  };

  BnFleetClient(net::Network& network, net::Address client,
                std::vector<net::Address> replicas, ServiceWorkerClient worker,
                Config config = {});

  /// Sends the request to the first healthy replica and verifies the
  /// response through the service worker.
  Result<net::HttpResponse> call(const net::HttpRequest& request);
  Result<net::HttpResponse> get(const std::string& path);

  const ServiceWorkerClient& worker() const { return worker_; }
  net::Failover& failover() { return failover_; }

 private:
  net::Network* network_;
  net::Address client_;
  ServiceWorkerClient worker_;
  net::Failover failover_;
  Config config_;
  crypto::HmacDrbg retry_jitter_;
};

}  // namespace revelio::ic

// Client-side verifying service worker (§4.2).
//
// On first contact a boundary node hands the browser a service worker;
// once active, the worker transforms requests into IC calls and — the
// security-relevant part — verifies the threshold certificate on every
// response, so even a fully malicious BN cannot alter canister data
// undetected. Installation itself is the bootstrapping gap ("an initial
// untampered contact"): the worker body must match a pinned digest, which
// in the paper is exactly what Revelio's measured BN image guarantees.
#pragma once

#include "ic/boundary_node.hpp"

namespace revelio::ic {

class ServiceWorkerClient {
 public:
  /// Installs a worker delivered by a BN. Fails if the body does not match
  /// the pinned digest (a doctored worker with verification disabled).
  static Result<ServiceWorkerClient> install(
      ByteView worker_body, const crypto::Digest32& pinned_digest,
      std::map<ReplicaId, Bytes> subnet_keys, std::uint32_t threshold);

  /// The digest of the reference worker (what an auditor would pin).
  static crypto::Digest32 reference_digest();

  /// Processes a BN response the way the active worker does: verifies the
  /// certificate and passes the response through, or blocks it.
  Result<net::HttpResponse> process(net::HttpResponse response);

  std::uint64_t verified_count() const { return verified_; }
  std::uint64_t rejected_count() const { return rejected_; }

 private:
  ServiceWorkerClient(std::map<ReplicaId, Bytes> subnet_keys,
                      std::uint32_t threshold)
      : subnet_keys_(std::move(subnet_keys)), threshold_(threshold) {}

  std::map<ReplicaId, Bytes> subnet_keys_;
  std::uint32_t threshold_;
  std::uint64_t verified_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace revelio::ic

#include "ic/canister.hpp"

namespace revelio::ic {

namespace {

/// Splits "key\0value" style args: first NUL separates the two fields.
std::pair<std::string, ByteView> split_arg(ByteView arg) {
  for (std::size_t i = 0; i < arg.size(); ++i) {
    if (arg[i] == 0) {
      return {to_string(arg.subspan(0, i)), arg.subspan(i + 1)};
    }
  }
  return {to_string(arg), ByteView{}};
}

void hash_string(crypto::Sha256& h, const std::string& s) {
  Bytes len;
  append_u32be(len, static_cast<std::uint32_t>(s.size()));
  h.update(len);
  h.update(to_bytes(s));
}

void hash_bytes(crypto::Sha256& h, ByteView b) {
  Bytes len;
  append_u64be(len, b.size());
  h.update(len);
  h.update(b);
}

}  // namespace

Result<Bytes> KeyValueCanister::update(const std::string& method,
                                       ByteView arg) {
  if (method == "set") {
    auto [key, value] = split_arg(arg);
    if (key.empty()) return Error::make("canister.bad_arg", "empty key");
    entries_[key] = to_bytes(value);
    return to_bytes(std::string_view("ok"));
  }
  if (method == "delete") {
    auto [key, rest] = split_arg(arg);
    entries_.erase(key);
    return to_bytes(std::string_view("ok"));
  }
  return Error::make("canister.no_such_method", method);
}

Result<Bytes> KeyValueCanister::query(const std::string& method,
                                      ByteView arg) const {
  if (method == "get") {
    auto [key, rest] = split_arg(arg);
    const auto it = entries_.find(key);
    if (it == entries_.end()) return Error::make("canister.not_found", key);
    return it->second;
  }
  if (method == "len") {
    Bytes out;
    append_u64be(out, entries_.size());
    return out;
  }
  return Error::make("canister.no_such_method", method);
}

crypto::Digest32 KeyValueCanister::state_hash() const {
  crypto::Sha256 h;
  h.update(to_bytes(std::string_view("kv-canister")));
  for (const auto& [key, value] : entries_) {
    hash_string(h, key);
    hash_bytes(h, value);
  }
  return h.finish();
}

Result<Bytes> CounterCanister::update(const std::string& method,
                                      ByteView arg) {
  if (method == "increment") {
    ++value_;
  } else if (method == "add") {
    if (arg.size() != 8) return Error::make("canister.bad_arg", "want u64");
    value_ += read_u64be(arg, 0);
  } else {
    return Error::make("canister.no_such_method", method);
  }
  Bytes out;
  append_u64be(out, value_);
  return out;
}

Result<Bytes> CounterCanister::query(const std::string& method,
                                     ByteView) const {
  if (method != "get") return Error::make("canister.no_such_method", method);
  Bytes out;
  append_u64be(out, value_);
  return out;
}

crypto::Digest32 CounterCanister::state_hash() const {
  crypto::Sha256 h;
  h.update(to_bytes(std::string_view("counter-canister")));
  Bytes v;
  append_u64be(v, value_);
  h.update(v);
  return h.finish();
}

void AssetCanister::deploy_asset(const std::string& path, Bytes content,
                                 std::string content_type) {
  assets_[path] = Asset{std::move(content), std::move(content_type)};
}

Result<Bytes> AssetCanister::update(const std::string& method, ByteView arg) {
  if (method == "store") {
    auto [path, content] = split_arg(arg);
    if (path.empty()) return Error::make("canister.bad_arg", "empty path");
    assets_[path] = Asset{to_bytes(content), "application/octet-stream"};
    return to_bytes(std::string_view("ok"));
  }
  return Error::make("canister.no_such_method", method);
}

Result<Bytes> AssetCanister::query(const std::string& method,
                                   ByteView arg) const {
  if (method == "http_request") {
    const auto [path, rest] = split_arg(arg);
    const auto it = assets_.find(path);
    if (it == assets_.end()) return Error::make("canister.not_found", path);
    // content_type \0 body
    Bytes out = to_bytes(it->second.content_type);
    out.push_back(0);
    append(out, it->second.content);
    return out;
  }
  if (method == "list") {
    Bytes out;
    for (const auto& [path, asset] : assets_) {
      append(out, path);
      out.push_back('\n');
    }
    return out;
  }
  return Error::make("canister.no_such_method", method);
}

crypto::Digest32 AssetCanister::state_hash() const {
  crypto::Sha256 h;
  h.update(to_bytes(std::string_view("asset-canister")));
  for (const auto& [path, asset] : assets_) {
    hash_string(h, path);
    hash_string(h, asset.content_type);
    hash_bytes(h, asset.content);
  }
  return h.finish();
}

}  // namespace revelio::ic

// Per-chip TCB update horizons consulted fail-closed in the verify stage.
//
// A staged fleet TCB update (ROADMAP item 3) has a window problem: the
// moment a chip's firmware is updated, reports signed under the *old* TCB
// are still floating around — cached VCEK chains, evidence bundles served
// by VMs that have not refreshed yet. An attacker who captured a
// pre-update report (or a vulnerable pre-update firmware state) must not
// be able to replay it forever. The horizon set records, per chip, the
// minimum acceptable reported TCB and the virtual instant it takes
// effect: before the horizon the fleet is mid-rollout and old reports
// still verify; at or after it they are rejected fail-closed with
// failure_step "tcb_horizon" — before any signature work, exactly like
// the RevocationSet.
//
// Announcements only ever raise the bar: a later announcement with a
// lower minimum is ignored (lowering an announced floor would be a
// fail-open), and for an equal-or-higher minimum the new horizon wins.
//
// Persistence mirrors RevocationSet: open() backs the set with the
// durable KV tier under "fleet/tcb/<chip>" so horizons outlive a gateway
// restart, fails closed on any malformed persisted entry, and an
// announcement is ALWAYS active in memory even when the durable write
// fails.
//
// Thread-safe: checks take a mutex; read-mostly, off the crypto hot path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "sevsnp/attestation_report.hpp"
#include "store/kv_store.hpp"

namespace revelio::fleet {

class TcbHorizon {
 public:
  /// In-memory set (tests, ephemeral gateways).
  TcbHorizon() = default;

  /// Store-backed set: loads every persisted horizon and writes new
  /// announcements through. Fails closed ("fleet.tcb_corrupt") if any
  /// persisted entry is malformed. The store must outlive the set.
  static Result<std::unique_ptr<TcbHorizon>> open(store::KvStore& kv);

  /// Announces a staged update: from `horizon_us` on, reports from `chip`
  /// below `minimum` are rejected. Returns whether the announcement was
  /// applied: ok(true) when it set or raised the floor (or re-announced
  /// an equal minimum with a new horizon), ok(false) when it was IGNORED
  /// because `minimum` is below the chip's current floor — callers
  /// auditing the operation (LifecycleEngine ops, operator tooling) must
  /// surface the drop distinctly, not record it as an applied update.
  /// Returns an error when the durable write fails — but the horizon is
  /// ALWAYS active in memory from this call on.
  Result<bool> announce(const sevsnp::ChipId& chip, sevsnp::TcbVersion minimum,
                        std::uint64_t horizon_us,
                        const std::string& reason = {});

  /// True when a report from `chip` carrying `reported` is acceptable at
  /// virtual instant `now_us`. Chips with no announcement always pass.
  bool acceptable(const sevsnp::ChipId& chip, sevsnp::TcbVersion reported,
                  std::uint64_t now_us) const;

  struct Stats {
    std::uint64_t entries = 0;
    std::uint64_t checks = 0;      // acceptable() calls
    std::uint64_t rejections = 0;  // checks that hit an active horizon
  };
  Stats stats() const;
  std::size_t size() const;

 private:
  struct Entry {
    std::uint64_t minimum = 0;  // TcbVersion::encode()
    std::uint64_t horizon_us = 0;
  };

  mutable std::mutex mu_;
  std::map<Bytes, Entry> entries_;  // chip id bytes -> active horizon
  store::KvStore* kv_ = nullptr;
  mutable std::uint64_t checks_ = 0;
  mutable std::uint64_t rejections_ = 0;
};

}  // namespace revelio::fleet

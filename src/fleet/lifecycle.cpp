#include "fleet/lifecycle.hpp"

#include <algorithm>

#include "crypto/sha2.hpp"
#include "obs/metrics.hpp"

namespace revelio::fleet {

namespace {

/// Session-id namespace for lifecycle records: keeps fleet operations
/// visually and numerically distinct from real session verdicts when the
/// chain is replayed offline (sessions are dense small integers).
constexpr std::uint64_t kLifecycleSessionBase = 0xf1ee7000'00000000ULL;

}  // namespace

void LifecycleEngine::schedule(LifecycleOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  ops_.push_back(Scheduled{std::move(op), next_seq_++, false});
}

std::size_t LifecycleEngine::apply_due(std::uint64_t now_us) {
  // Move due ops out under the lock, run them outside it: an op may call
  // back into systems that themselves log or schedule — including
  // schedule() on THIS engine (follow-up ops for retry semantics), which
  // push_backs into ops_ and may reallocate it. `due` therefore owns its
  // ops; pointers into ops_ would dangle on the first follow-up schedule
  // (or a concurrent one from another thread). The vacated ops_ entries
  // stay behind as applied tombstones so stats() keeps counting.
  std::vector<Scheduled> due;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& scheduled : ops_) {
      if (!scheduled.applied && scheduled.op.at_us <= now_us) {
        scheduled.applied = true;
        due.push_back(Scheduled{std::move(scheduled.op), scheduled.seq, true});
      }
    }
  }
  std::sort(due.begin(), due.end(), [](const Scheduled& a, const Scheduled& b) {
    return a.op.at_us != b.op.at_us ? a.op.at_us < b.op.at_us : a.seq < b.seq;
  });
  for (Scheduled& scheduled : due) {
    const Status st = scheduled.op.apply ? scheduled.op.apply(now_us)
                                         : Status::success();
    const bool ok = st.ok();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++applied_;
      if (!ok) ++failed_;
    }
    obs::metrics()
        .counter("fleet.op.count", {{"op", scheduled.op.name},
                                    {"result", ok ? "ok" : "failed"}})
        .inc();
    if (audit_ != nullptr) {
      // Transparency-log-style entry in the attestation audit chain: the
      // op name rides the failure_step field (its wire slot), the op's
      // scheduled instant + outcome ride evidence_digest, and the verdict
      // flag records whether the operation succeeded.
      obs::AuditRecord record;
      record.session = kLifecycleSessionBase | scheduled.seq;
      record.virt_us = now_us;
      record.accepted = ok;
      record.failure_step = scheduled.op.name;
      Bytes body;
      append_u64be(body, scheduled.op.at_us);
      append(body, scheduled.op.name);
      if (!ok) append(body, st.error().to_string());
      record.evidence_digest = crypto::sha256(body);
      audit_->append(record);
    }
  }
  return due.size();
}

LifecycleEngine::Stats LifecycleEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.applied = applied_;
  s.failed = failed_;
  for (const auto& scheduled : ops_) {
    if (!scheduled.applied) ++s.pending;
  }
  return s;
}

}  // namespace revelio::fleet

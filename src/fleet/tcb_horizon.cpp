#include "fleet/tcb_horizon.hpp"

namespace revelio::fleet {

namespace {

constexpr std::string_view kPrefix = "fleet/tcb/";

Bytes store_key(ByteView chip) {
  Bytes key;
  key.reserve(kPrefix.size() + chip.size());
  append(key, kPrefix);
  append(key, chip);
  return key;
}

// Durable value: u64be(minimum) || u64be(horizon_us) || reason (free-form).
Bytes store_value(std::uint64_t minimum, std::uint64_t horizon_us,
                  const std::string& reason) {
  Bytes value;
  append_u64be(value, minimum);
  append_u64be(value, horizon_us);
  append(value, reason);
  return value;
}

}  // namespace

Result<std::unique_ptr<TcbHorizon>> TcbHorizon::open(store::KvStore& kv) {
  auto set = std::make_unique<TcbHorizon>();
  set->kv_ = &kv;
  Status bad = Status::success();
  kv.for_each_prefix(to_bytes(kPrefix), [&](ByteView key, ByteView value) {
    if (!bad.ok()) return;
    const ByteView chip = key.subspan(kPrefix.size());
    if (chip.size() != sevsnp::ChipId::size() || value.size() < 16) {
      bad = Error::make("fleet.tcb_corrupt",
                        "malformed persisted TCB horizon entry");
      return;
    }
    Entry entry;
    entry.minimum = read_u64be(value, 0);
    entry.horizon_us = read_u64be(value, 8);
    set->entries_[Bytes(chip.begin(), chip.end())] = entry;
  });
  if (!bad.ok()) return bad.error();
  return set;
}

Result<bool> TcbHorizon::announce(const sevsnp::ChipId& chip,
                                  sevsnp::TcbVersion minimum,
                                  std::uint64_t horizon_us,
                                  const std::string& reason) {
  const std::uint64_t encoded = minimum.encode();
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[chip.bytes()];
  // Never lower an announced floor; an equal-or-higher minimum takes the
  // new horizon (a re-announcement may extend or shorten the rollout).
  // The drop is reported, not swallowed: an audit trail that recorded an
  // ignored announcement as applied would hide the ineffective rollout.
  if (encoded < entry.minimum) return false;
  entry.minimum = encoded;
  entry.horizon_us = horizon_us;
  if (kv_ == nullptr) return true;
  if (auto st = kv_->put(store_key(chip.view()),
                         store_value(encoded, horizon_us, reason));
      !st.ok()) {
    return st.error();
  }
  return true;
}

bool TcbHorizon::acceptable(const sevsnp::ChipId& chip,
                            sevsnp::TcbVersion reported,
                            std::uint64_t now_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  ++checks_;
  const auto it = entries_.find(chip.bytes());
  if (it == entries_.end()) return true;
  if (now_us < it->second.horizon_us) return true;  // rollout in progress
  const sevsnp::TcbVersion minimum =
      sevsnp::TcbVersion::decode(it->second.minimum);
  if (reported.at_least(minimum)) return true;
  ++rejections_;
  return false;
}

TcbHorizon::Stats TcbHorizon::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{entries_.size(), checks_, rejections_};
}

std::size_t TcbHorizon::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace revelio::fleet

// Deterministic fleet-lifecycle engine (ROADMAP item 3).
//
// A live fleet is not static: TCB versions advance chip by chip,
// certificates expire and rotate under ACME rate limits, measurements are
// revoked after the fact, and hosts try to roll sealed volumes back. This
// engine turns those operations into *scheduled virtual-time events* so
// they can run as chaos-layer scenarios inside a soak: each LifecycleOp
// carries the virtual instant it fires at and a closure that performs it
// (announce a TcbHorizon, push into a RevocationSet, re-run the SP node's
// provisioning round, attempt a volume rollback). apply_due(now_us) runs
// every op whose instant has arrived, exactly once, in (instant,
// insertion) order — always on the caller's thread, which is what keeps a
// seeded soak bit-identical run to run.
//
// Wired into a staged gateway run via SessionEngineConfig::on_virtual_time
// (the driver calls the hook at the top of every event-loop batch), or
// called directly between sessions in a blocking soak.
//
// Every application is audited transparency-log-style: when an AuditLog is
// attached, the op's name, virtual instant and outcome are folded into the
// same Merkle-checkpointed hash chain the attestation verdicts live in —
// an offline verifier replaying the chain sees revocation pushes and TCB
// announcements interleaved with the verdicts they affected.
//
// Thread-safe: schedule() and apply_due() take a mutex. apply_due() is
// expected from one driver thread at a time; ops run outside the engine
// lock so they may take their targets' own locks freely — and may call
// schedule() on this engine (follow-up/retry ops), concurrently with
// schedule() from other threads. Due ops are moved out of the engine's
// storage before they run, so those schedules can never invalidate the
// batch in flight; a follow-up already due still waits for the next
// apply_due() call.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "obs/audit_log.hpp"

namespace revelio::fleet {

/// One timed fleet operation. `apply` runs at most once, the first time
/// the virtual clock reaches `at_us`; it returns why it failed, if it did
/// (failures are audited and counted, never retried — schedule a second op
/// for retry semantics).
struct LifecycleOp {
  std::uint64_t at_us = 0;
  /// Audited + metric label; <= 15 chars survive the audit wire format
  /// (AuditRecord::kFailureStepSize), e.g. "tcb_update", "revoke_push",
  /// "cert_rotate", "rollback_probe".
  std::string name;
  std::function<Status(std::uint64_t now_us)> apply;
};

class LifecycleEngine {
 public:
  /// `audit` (optional) receives one record per applied op; must outlive
  /// the engine. Appends are thread-safe on the log's side.
  explicit LifecycleEngine(obs::AuditLog* audit = nullptr) : audit_(audit) {}

  void schedule(LifecycleOp op);

  /// Applies every scheduled op with at_us <= now_us that has not run
  /// yet, in (at_us, insertion) order. Returns how many ran.
  std::size_t apply_due(std::uint64_t now_us);

  /// Adapter for SessionEngineConfig::on_virtual_time.
  std::function<void(std::uint64_t)> hook() {
    return [this](std::uint64_t now_us) { apply_due(now_us); };
  }

  struct Stats {
    std::uint64_t applied = 0;
    std::uint64_t failed = 0;   // applied ops whose Status was an error
    std::uint64_t pending = 0;  // scheduled, not yet due
  };
  Stats stats() const;

 private:
  struct Scheduled {
    LifecycleOp op;
    std::uint64_t seq = 0;  // insertion order tiebreak
    bool applied = false;
  };

  mutable std::mutex mu_;
  std::vector<Scheduled> ops_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t applied_ = 0;
  std::uint64_t failed_ = 0;
  obs::AuditLog* audit_ = nullptr;
};

}  // namespace revelio::fleet

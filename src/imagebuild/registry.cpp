#include "imagebuild/registry.hpp"

namespace revelio::imagebuild {

crypto::Digest32 BaseImage::digest() const {
  crypto::Sha256 h;
  h.update(to_bytes(std::string_view("base-image-v1")));
  auto update_string = [&h](const std::string& s) {
    Bytes len;
    append_u32be(len, static_cast<std::uint32_t>(s.size()));
    h.update(len);
    h.update(to_bytes(s));
  };
  update_string(name);
  update_string(tag);
  Bytes count;
  append_u32be(count, static_cast<std::uint32_t>(packages.size()));
  h.update(count);
  for (const auto& pkg : packages) {
    update_string(pkg.name);
    update_string(pkg.version);
    Bytes file_count;
    append_u32be(file_count, static_cast<std::uint32_t>(pkg.files.size()));
    h.update(file_count);
    for (const auto& [path, content] : pkg.files) {  // map => sorted
      update_string(path);
      Bytes len;
      append_u64be(len, content.size());
      h.update(len);
      h.update(content);
    }
  }
  return h.finish();
}

crypto::Digest32 PackageRegistry::publish(BaseImage image) {
  const crypto::Digest32 digest = image.digest();
  tags_[{image.name, image.tag}] = digest;
  by_digest_[digest.bytes()] = std::move(image);
  return digest;
}

Result<BaseImage> PackageRegistry::pull_by_tag(const std::string& name,
                                               const std::string& tag) const {
  const auto it = tags_.find({name, tag});
  if (it == tags_.end()) {
    return Error::make("registry.unknown_tag", name + ":" + tag);
  }
  return by_digest_.at(it->second.bytes());
}

Result<BaseImage> PackageRegistry::pull_by_digest(
    const crypto::Digest32& digest) const {
  const auto it = by_digest_.find(digest.bytes());
  if (it == by_digest_.end()) {
    return Error::make("registry.unknown_digest");
  }
  return it->second;
}

}  // namespace revelio::imagebuild

// Package / base-image registry (docker-registry stand-in).
//
// The paper's build avoids `apt-get`-style drift by pulling a published,
// integrity-protected base image with the software dependencies baked in
// (§5.1.1). The registry supports both pull-by-tag (mutable — the upstream
// may republish) and pull-by-digest (content-addressed, reproducible); the
// tests show only the latter yields bit-identical rebuilds after upstream
// drift.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/sha2.hpp"

namespace revelio::imagebuild {

struct Package {
  std::string name;
  std::string version;
  std::map<std::string, Bytes> files;  // path -> content

  friend bool operator==(const Package&, const Package&) = default;
};

struct BaseImage {
  std::string name;
  std::string tag;
  std::vector<Package> packages;

  /// Content digest over canonical serialization; the pull-by-digest key.
  crypto::Digest32 digest() const;
};

class PackageRegistry {
 public:
  /// Publishes (or republishes) `name:tag`; returns the content digest.
  crypto::Digest32 publish(BaseImage image);

  /// Mutable lookup: returns whatever `name:tag` currently points at.
  Result<BaseImage> pull_by_tag(const std::string& name,
                                const std::string& tag) const;

  /// Content-addressed lookup: immutable.
  Result<BaseImage> pull_by_digest(const crypto::Digest32& digest) const;

 private:
  std::map<std::pair<std::string, std::string>, crypto::Digest32> tags_;
  std::map<Bytes, BaseImage> by_digest_;  // keyed by digest bytes
};

}  // namespace revelio::imagebuild

#include "imagebuild/builder.hpp"

#include "common/hex.hpp"
#include "storage/dm_verity.hpp"
#include "storage/partition.hpp"

namespace revelio::imagebuild {

namespace {

constexpr std::size_t kBlockSize = 4096;

FixedBytes<16> uuid_from_content(ByteView content, std::string_view label) {
  crypto::Sha256 h;
  h.update(to_bytes(std::string_view("partition-uuid")));
  h.update(to_bytes(label));
  h.update(content);
  return FixedBytes<16>::from(h.finish().view().subspan(0, 16));
}

}  // namespace

crypto::Digest32 VmImage::digest() const {
  crypto::Sha256 h;
  h.update(to_bytes(std::string_view("vm-image-v1")));
  auto field = [&h](ByteView v) {
    Bytes len;
    append_u64be(len, v.size());
    h.update(len);
    h.update(v);
  };
  field(kernel_blob);
  field(initrd_blob);
  field(to_bytes(cmdline));
  field(disk_bytes);
  return h.finish();
}

std::shared_ptr<storage::MemDisk> VmImage::instantiate_disk() const {
  auto disk = std::make_shared<storage::MemDisk>(kBlockSize, disk_blocks);
  // disk_bytes covers the whole device by construction.
  auto st = disk->write(0, disk_bytes);
  (void)st;  // cannot fail: sized to match
  disk->reset_stats();
  return disk;
}

Result<VmImage> ImageBuilder::build(const BuildInputs& inputs,
                                    const BuildOptions& options) const {
  // ---- Stage 1: builder container pulls the dependency base image.
  Result<BaseImage> base = inputs.base_image_digest
                               ? registry_->pull_by_digest(*inputs.base_image_digest)
                               : registry_->pull_by_tag(inputs.base_image_name,
                                                        inputs.base_image_tag);
  if (!base.ok()) return base.error();

  // ---- Stage 2: assemble the final rootfs from runtime files only.
  storage::ImageFs rootfs;
  for (const auto& pkg : base->packages) {
    for (const auto& [path, content] : pkg.files) {
      rootfs.add_file(path, content);
    }
  }
  for (const auto& [path, content] : inputs.service_files) {
    rootfs.add_file(path, content, 0755);
  }

  // Network posture is part of the rootfs (§5.1.3), hence measured.
  {
    std::string fw = inputs.initrd.block_inbound_network
                         ? "policy=drop-inbound\n"
                         : "policy=accept-inbound\n";
    for (const auto& port : inputs.initrd.allowed_inbound_ports) {
      fw += "allow=" + port + "\n";
    }
    rootfs.add_file("/etc/firewall.conf", to_bytes(fw));
  }

  if (options.hermetic) {
    // Scrub the classic non-determinism carriers the paper lists.
    rootfs.remove_file("/var/lib/apt/lists/cache");
    rootfs.remove_file("/var/lib/dbus/machine-id");
  } else {
    // A careless pipeline leaks wall clock, paths and machine identity
    // into the image.
    std::string info = "built_at_us=" + std::to_string(options.wall_clock_us) +
                       "\nbuild_path=" + options.build_path + "\n";
    rootfs.add_file("/var/lib/build-info", to_bytes(info));
    Bytes machine_id;
    append_u64be(machine_id, options.wall_clock_us ^ 0x5deece66dULL);
    rootfs.add_file("/var/lib/dbus/machine-id", machine_id);
  }

  const Bytes rootfs_bytes = rootfs.serialize(kBlockSize);
  const std::uint64_t rootfs_blocks = rootfs_bytes.size() / kBlockSize;

  // Size the hash device: tree is < 2x leaf digests plus headers.
  std::uint64_t verity_blocks = inputs.verity_partition_blocks;
  if (verity_blocks == 0) {
    const std::uint64_t tree_bytes = rootfs_blocks * 32 * 2 + 4096;
    verity_blocks = tree_bytes / kBlockSize + 2;
  }

  // ---- Partitioned disk layout.
  storage::PartitionTable table;
  table.add("rootfs", uuid_from_content(rootfs_bytes, "rootfs"),
            rootfs_blocks);
  table.add("verity", uuid_from_content(rootfs_bytes, "verity"),
            verity_blocks);
  table.add("data", uuid_from_content(rootfs_bytes, "data"),
            inputs.data_partition_blocks);

  const std::uint64_t total_blocks = table.blocks_used();
  auto disk = std::make_shared<storage::MemDisk>(kBlockSize, total_blocks);
  if (auto st = table.write_to(*disk); !st.ok()) return st.error();

  auto rootfs_part = storage::PartitionTable::open(disk, "rootfs");
  if (!rootfs_part.ok()) return rootfs_part.error();
  if (auto st = (*rootfs_part)->write(0, rootfs_bytes); !st.ok()) {
    return st.error();
  }

  // ---- dm-verity metadata over the finished rootfs (§5.1.2).
  auto verity_part = storage::PartitionTable::open(disk, "verity");
  if (!verity_part.ok()) return verity_part.error();
  auto meta = storage::Verity::format(**rootfs_part, **verity_part);
  if (!meta.ok()) return meta.error();

  // ---- Assemble the shippable image.
  VmImage image;
  image.kernel_blob = inputs.kernel.serialize();
  image.initrd_blob = inputs.initrd.serialize();

  vm::KernelCmdline cmdline;
  if (inputs.initrd.setup_verity) {
    cmdline.verity_root_hash_hex = to_hex(meta->root_hash.view());
  }
  image.cmdline = cmdline.to_string();
  image.verity_root = meta->root_hash;
  image.disk_blocks = total_blocks;
  image.disk_bytes = disk->raw_dump(0, total_blocks * kBlockSize);
  return image;
}

}  // namespace revelio::imagebuild

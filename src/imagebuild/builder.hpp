// Deterministic VM image builder (§5.1).
//
// Two-stage build in the spirit of the paper's docker pipeline: a builder
// stage pulls the pinned base image (dependencies), a final stage assembles
// only the runtime files. In hermetic mode every non-determinism source is
// scrubbed — timestamps squashed, partition UUIDs derived from content,
// volatile files cleared — so one set of inputs yields one bit-exact image
// and therefore one launch measurement (F5). Non-hermetic mode deliberately
// injects the classic noise (wall clock, build path, machine-id) so tests
// and benches can demonstrate why hermeticity matters.
#pragma once

#include <memory>
#include <optional>

#include "imagebuild/registry.hpp"
#include "storage/imagefs.hpp"
#include "storage/mem_disk.hpp"
#include "vm/blobs.hpp"

namespace revelio::imagebuild {

struct BuildInputs {
  // Service artefacts from the provider's CI (path -> content).
  std::map<std::string, Bytes> service_files;

  // Dependency base image. If `base_image_digest` is set the pull is
  // pinned; otherwise the (mutable) tag is used.
  std::string base_image_name = "ubuntu";
  std::string base_image_tag = "20.04";
  std::optional<crypto::Digest32> base_image_digest;

  vm::KernelSpec kernel;
  vm::InitrdSpec initrd;

  // Sizing of the encrypted data partition (4 KiB blocks).
  std::uint64_t data_partition_blocks = 32;
  // Headroom for the verity hash device (4 KiB blocks); sized automatically
  // if 0.
  std::uint64_t verity_partition_blocks = 0;
};

struct BuildOptions {
  bool hermetic = true;
  // Only consulted in non-hermetic mode (the noise sources).
  std::uint64_t wall_clock_us = 0;
  std::string build_path = "/home/ci/workspace";
};

/// The shippable artefact: everything the cloud provider receives.
struct VmImage {
  Bytes kernel_blob;
  Bytes initrd_blob;
  std::string cmdline;
  Bytes disk_bytes;               // partitioned disk (rootfs/verity/data)
  crypto::Digest32 verity_root;   // also embedded in cmdline
  std::uint64_t disk_blocks = 0;

  /// Digest over all shipped artefacts — what a rebuild must reproduce.
  crypto::Digest32 digest() const;

  /// Materializes the disk as a fresh device (one per VM instance).
  std::shared_ptr<storage::MemDisk> instantiate_disk() const;
};

class ImageBuilder {
 public:
  explicit ImageBuilder(const PackageRegistry& registry)
      : registry_(&registry) {}

  Result<VmImage> build(const BuildInputs& inputs,
                        const BuildOptions& options = {}) const;

 private:
  const PackageRegistry* registry_;
};

}  // namespace revelio::imagebuild

#include "crypto/ec_precomp.hpp"

#include <cassert>

namespace revelio::crypto::ecp {

Jac jac_double(const MontCtx& fp, const Jac& p) {
  if (p.is_inf()) return p;
  if (p.y.is_zero()) return Jac::inf();

  const U384 delta = fp.mul(p.z, p.z);
  const U384 gamma = fp.mul(p.y, p.y);
  const U384 beta = fp.mul(p.x, gamma);
  // alpha = 3 (x - delta)(x + delta)
  const U384 diff = fp.sub(p.x, delta);
  const U384 sum = fp.add(p.x, delta);
  U384 alpha = fp.mul(diff, sum);
  alpha = fp.add(fp.add(alpha, alpha), alpha);

  Jac r;
  // X3 = alpha^2 - 8 beta
  const U384 beta2 = fp.add(beta, beta);
  const U384 beta4 = fp.add(beta2, beta2);
  const U384 beta8 = fp.add(beta4, beta4);
  r.x = fp.sub(fp.mul(alpha, alpha), beta8);
  // Z3 = (y + z)^2 - gamma - delta
  const U384 yz = fp.add(p.y, p.z);
  r.z = fp.sub(fp.sub(fp.mul(yz, yz), gamma), delta);
  // Y3 = alpha (4 beta - X3) - 8 gamma^2
  const U384 gamma2 = fp.mul(gamma, gamma);
  const U384 g2 = fp.add(gamma2, gamma2);
  const U384 g4 = fp.add(g2, g2);
  const U384 g8 = fp.add(g4, g4);
  r.y = fp.sub(fp.mul(alpha, fp.sub(beta4, r.x)), g8);
  return r;
}

Jac jac_add(const MontCtx& fp, const Jac& a, const Jac& b) {
  if (a.is_inf()) return b;
  if (b.is_inf()) return a;

  const U384 z1z1 = fp.mul(a.z, a.z);
  const U384 z2z2 = fp.mul(b.z, b.z);
  const U384 u1 = fp.mul(a.x, z2z2);
  const U384 u2 = fp.mul(b.x, z1z1);
  const U384 s1 = fp.mul(fp.mul(a.y, b.z), z2z2);
  const U384 s2 = fp.mul(fp.mul(b.y, a.z), z1z1);

  const U384 h = fp.sub(u2, u1);
  const U384 r = fp.sub(s2, s1);
  if (h.is_zero()) {
    if (r.is_zero()) return jac_double(fp, a);
    return Jac::inf();
  }

  const U384 hh = fp.mul(h, h);
  const U384 hhh = fp.mul(h, hh);
  const U384 v = fp.mul(u1, hh);

  Jac out;
  // X3 = r^2 - HHH - 2V
  out.x = fp.sub(fp.sub(fp.mul(r, r), hhh), fp.add(v, v));
  // Y3 = r (V - X3) - S1 * HHH
  out.y = fp.sub(fp.mul(r, fp.sub(v, out.x)), fp.mul(s1, hhh));
  // Z3 = Z1 Z2 H
  out.z = fp.mul(fp.mul(a.z, b.z), h);
  return out;
}

Jac jac_add_affine(const MontCtx& fp, const Jac& a, const Aff& b) {
  if (b.inf) return a;
  if (a.is_inf()) return jac_from_affine(fp, b);

  // Z2 = 1, so U1 = X1, S1 = Y1.
  const U384 z1z1 = fp.mul(a.z, a.z);
  const U384 u2 = fp.mul(b.x, z1z1);
  const U384 s2 = fp.mul(fp.mul(b.y, a.z), z1z1);

  const U384 h = fp.sub(u2, a.x);
  const U384 r = fp.sub(s2, a.y);
  if (h.is_zero()) {
    if (r.is_zero()) return jac_double(fp, a);
    return Jac::inf();
  }

  const U384 hh = fp.mul(h, h);
  const U384 hhh = fp.mul(h, hh);
  const U384 v = fp.mul(a.x, hh);

  Jac out;
  out.x = fp.sub(fp.sub(fp.mul(r, r), hhh), fp.add(v, v));
  out.y = fp.sub(fp.mul(r, fp.sub(v, out.x)), fp.mul(a.y, hhh));
  out.z = fp.mul(a.z, h);
  return out;
}

Jac jac_from_affine(const MontCtx& fp, const Aff& a) {
  if (a.inf) return Jac::inf();
  return Jac{a.x, a.y, fp.one()};
}

std::vector<Aff> batch_normalize(const MontCtx& fp,
                                 const std::vector<Jac>& pts) {
  std::vector<Aff> out(pts.size());
  // prefix[i] = product of the first i+1 finite z coordinates.
  std::vector<U384> prefix;
  prefix.reserve(pts.size());
  U384 acc = fp.one();
  for (const Jac& p : pts) {
    if (!p.is_inf()) acc = fp.mul(acc, p.z);
    prefix.push_back(acc);
  }
  if (prefix.empty()) return out;

  // One inversion for the whole batch, then peel back per point.
  U384 inv_acc = fp.inv(acc);
  for (std::size_t i = pts.size(); i-- > 0;) {
    const Jac& p = pts[i];
    if (p.is_inf()) continue;
    // Inverse of this point's z: inv_acc * (product of earlier finite z's).
    U384 zinv;
    bool have_earlier = false;
    for (std::size_t j = i; j-- > 0;) {
      if (!pts[j].is_inf()) {
        zinv = fp.mul(inv_acc, prefix[j]);
        have_earlier = true;
        break;
      }
    }
    if (!have_earlier) zinv = inv_acc;
    const U384 zinv2 = fp.mul(zinv, zinv);
    out[i].x = fp.mul(p.x, zinv2);
    out[i].y = fp.mul(p.y, fp.mul(zinv2, zinv));
    out[i].inf = false;
    inv_acc = fp.mul(inv_acc, p.z);
  }
  return out;
}

std::vector<std::int8_t> wnaf_recode(const U384& k, unsigned width) {
  assert(width >= 2 && width <= 7);
  std::vector<std::int8_t> digits;
  digits.reserve(385);

  U384 d = k;
  const std::uint64_t mask = (std::uint64_t{1} << (width + 1)) - 1;
  const std::int64_t half = std::int64_t{1} << width;

  auto shr1 = [](U384& v) {
    for (std::size_t i = 0; i + 1 < U384::kLimbs; ++i) {
      v.limbs[i] = (v.limbs[i] >> 1) | (v.limbs[i + 1] << 63);
    }
    v.limbs[U384::kLimbs - 1] >>= 1;
  };

  while (!d.is_zero()) {
    if (d.limbs[0] & 1) {
      std::int64_t digit = static_cast<std::int64_t>(d.limbs[0] & mask);
      if (digit >= half) digit -= half << 1;
      digits.push_back(static_cast<std::int8_t>(digit));
      // d -= digit. Negative digits add; k < 2^384 - 2^width keeps this from
      // overflowing (curve orders leave far more headroom than that).
      const U384 small = U384::from_u64(
          static_cast<std::uint64_t>(digit < 0 ? -digit : digit));
      U384 next;
      if (digit > 0) {
        sub_with_borrow(next, d, small);
      } else {
        add_with_carry(next, d, small);
      }
      d = next;
    } else {
      digits.push_back(0);
    }
    shr1(d);
  }
  return digits;
}

std::vector<Aff> odd_multiples(const MontCtx& fp, const Jac& p,
                               unsigned width) {
  const std::size_t count = std::size_t{1} << (width - 1);  // 1,3,...,2^w-1
  std::vector<Jac> jac(count);
  jac[0] = p;
  const Jac twice = jac_double(fp, p);
  for (std::size_t i = 1; i < count; ++i) {
    jac[i] = jac_add(fp, jac[i - 1], twice);
  }
  return batch_normalize(fp, jac);
}

std::vector<std::vector<Aff>> odd_multiples_many(const MontCtx& fp,
                                                 const std::vector<Jac>& pts,
                                                 unsigned width) {
  const std::size_t count = std::size_t{1} << (width - 1);
  std::vector<Jac> all;
  all.reserve(pts.size() * count);
  for (const Jac& p : pts) {
    all.push_back(p);
    const Jac twice = jac_double(fp, p);
    for (std::size_t i = 1; i < count; ++i) {
      all.push_back(jac_add(fp, all.back(), twice));
    }
  }
  const std::vector<Aff> flat = batch_normalize(fp, all);
  std::vector<std::vector<Aff>> out(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    out[i].assign(flat.begin() + static_cast<std::ptrdiff_t>(i * count),
                  flat.begin() + static_cast<std::ptrdiff_t>((i + 1) * count));
  }
  return out;
}

FixedBaseTable::FixedBaseTable(const MontCtx& fp, const Aff& g,
                               unsigned scalar_bits) {
  windows_ = (scalar_bits + kWindowBits - 1) / kWindowBits;
  std::vector<Jac> jac;
  jac.reserve(windows_ * 15);

  Jac base = jac_from_affine(fp, g);  // 16^i * G for the current window
  for (unsigned w = 0; w < windows_; ++w) {
    Jac multiple = base;
    jac.push_back(multiple);  // 1 * 16^i * G
    for (unsigned d = 2; d <= 15; ++d) {
      multiple = jac_add(fp, multiple, base);
      jac.push_back(multiple);
    }
    for (unsigned b = 0; b < kWindowBits; ++b) base = jac_double(fp, base);
  }
  table_ = batch_normalize(fp, jac);
}

Jac FixedBaseTable::mul(const MontCtx& fp, const U384& k) const {
  Jac acc = Jac::inf();
  for (unsigned w = 0; w < windows_; ++w) {
    const unsigned bit = w * kWindowBits;
    const unsigned digit =
        (k.limbs[bit / 64] >> (bit % 64)) & ((1u << kWindowBits) - 1);
    if (digit != 0) acc = jac_add_affine(fp, acc, entry(w, digit));
  }
  return acc;
}

std::shared_ptr<const VerifyTables> VerifyTableCache::get(const Bytes& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.tables;
}

void VerifyTableCache::put(const Bytes& key,
                           std::shared_ptr<const VerifyTables> tables) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0) return;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.tables = std::move(tables);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  if (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  entries_[key] = Entry{std::move(tables), lru_.begin()};
}

VerifyTableCache::Stats VerifyTableCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t VerifyTableCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

PinnedTableRegistry& PinnedTableRegistry::instance() {
  static PinnedTableRegistry registry;
  return registry;
}

std::shared_ptr<const VerifyTables> PinnedTableRegistry::get(
    const Bytes& key) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

bool PinnedTableRegistry::pin(const Bytes& key,
                              std::shared_ptr<const VerifyTables> tables) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (entries_.count(key) > 0) return true;
  if (entries_.size() >= kCapacity) return false;
  entries_.emplace(key, std::move(tables));
  return true;
}

PinnedTableRegistry::Stats PinnedTableRegistry::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mutex_);
  s.pinned = entries_.size();
  return s;
}

}  // namespace revelio::crypto::ecp

// Short Weierstrass elliptic curves: NIST P-256 and P-384.
//
// Both curves have a = -3, which the Jacobian doubling formula exploits.
// P-384 signs SEV-SNP attestation reports and the VCEK/ASK/ARK chain
// (matching AMD's real deployment); P-256 serves VM TLS identities where
// smaller keys keep handshakes cheap.
//
// Scalar multiplication runs on three fast paths (see ec_precomp.hpp and
// DESIGN.md "Crypto fast paths"): wNAF for arbitrary points, a fixed-base
// window table for the generator, and Strauss–Shamir interleaving with a
// per-public-key LRU table cache for the u1*G + u2*Q form ECDSA
// verification needs. The naive double-and-add ladder is kept as
// `scalar_mult_naive` — the reference the property tests compare against.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/bigint.hpp"
#include "crypto/ec_precomp.hpp"

namespace revelio::crypto {

struct CurveParams {
  std::string name;
  U384 p;   // field prime
  U384 b;   // curve coefficient (a is fixed to -3)
  U384 gx;  // base point
  U384 gy;
  U384 n;   // base point order
  std::size_t byte_length;  // field element encoding size
};

const CurveParams& p256_params();
const CurveParams& p384_params();

/// A curve with precomputed Montgomery contexts for its two prime fields
/// plus the fixed-base table for its generator.
class Curve {
 public:
  explicit Curve(const CurveParams& params);

  /// Affine point in the plain (non-Montgomery) domain.
  struct Point {
    U384 x;
    U384 y;
    bool infinity = false;

    static Point at_infinity() { return Point{{}, {}, true}; }

    /// Uncompressed SEC1 encoding: 0x04 || X || Y.
    Bytes encode(std::size_t coord_len) const;
  };

  const CurveParams& params() const { return params_; }
  const MontCtx& field() const { return fp_; }
  const MontCtx& scalar_field() const { return fn_; }

  Point generator() const { return Point{params_.gx, params_.gy, false}; }

  /// Checks y^2 == x^3 - 3x + b (mod p).
  bool on_curve(const Point& pt) const;

  Point add(const Point& a, const Point& b) const;

  /// k * pt via width-5 wNAF with an on-the-fly odd-multiples table.
  /// Both curves have cofactor 1, so k is reduced mod n first.
  Point scalar_mult(const U384& k, const Point& pt) const;

  /// k * G via the fixed-base window table: one mixed addition per nonzero
  /// radix-16 digit of k, no doublings.
  Point scalar_mult_base(const U384& k) const;

  /// u1 * G + u2 * Q in one pass: fixed-base table for the G term,
  /// Strauss–Shamir over a half-length shared doubling chain for the Q term
  /// (u2 split at half the order bits against cached tables for Q and
  /// 2^half * Q). This is the ECDSA verification hot path.
  Point double_scalar_mult_base(const U384& u1, const U384& u2,
                                const Point& q) const;

  /// One term of a multi-scalar sum (see multi_scalar_mult_base).
  struct MsmTerm {
    U384 scalar;
    Point point;
  };

  /// base_scalar * G + sum(full_terms) + sum(small_terms), computed over ONE
  /// interleaved Strauss–Shamir doubling ladder shared by every term — the
  /// batch-verification workhorse. Full terms expect full-width scalars and
  /// use the per-key verification tables (pinned registry, then LRU), split
  /// at half the order bits like double_scalar_mult_base. Small terms expect
  /// short scalars (batch coefficients, ~128 bits) against one-shot points;
  /// their width-4 tables are built on the fly and normalized with a single
  /// shared inversion. The G term uses the fixed-base table and costs no
  /// doublings at all.
  Point multi_scalar_mult_base(const U384& base_scalar,
                               const std::vector<MsmTerm>& full_terms,
                               const std::vector<MsmTerm>& small_terms) const;

  /// The curve point (x, y) with EVEN y for the given x coordinate, if one
  /// exists (p = 3 mod 4 on both curves, so the sqrt is one exponentiation).
  /// Batch ECDSA verification uses this to reconstruct the signer's nonce
  /// point R from r; the signer normalizes to even y so the choice of root
  /// is never ambiguous.
  std::optional<Point> lift_x_even(const U384& x) const;

  /// Builds Q's verification tables and pins them in the process-wide
  /// read-only registry (ecp::PinnedTableRegistry), so every thread from
  /// here on skips both the table build and the LRU lock for Q. Meant for
  /// the well-known long-lived bases (ARK / ASK / VCEK); a full registry
  /// degrades silently to the LRU.
  void pin_verify_tables(const Point& q) const;

  /// Reference MSB-first double-and-add ladder. Slow; exists so tests and
  /// benchmarks can compare the optimized paths against it.
  Point scalar_mult_naive(const U384& k, const Point& pt) const;

  /// Decodes an uncompressed SEC1 point and validates it. Distinct error
  /// codes let callers tell a parse failure ("ec.bad_point_encoding"),
  /// a non-canonical coordinate ("ec.coordinate_out_of_range"), and an
  /// off-curve point ("ec.point_not_on_curve") apart; a decoded point is
  /// never the point at infinity.
  Result<Point> decode_point(ByteView encoded) const;

  /// Encodes with this curve's coordinate size.
  Bytes encode_point(const Point& pt) const {
    return pt.encode(params_.byte_length);
  }

  /// Stats of the per-public-key verification table cache.
  ecp::VerifyTableCache::Stats verify_cache_stats() const {
    return verify_cache_->stats();
  }

 private:
  U384 reduce_scalar(const U384& k) const;
  Point to_affine(const ecp::Jac& p) const;
  std::shared_ptr<const ecp::VerifyTables> tables_for(const Point& q) const;
  std::shared_ptr<ecp::VerifyTables> build_verify_tables(const Point& q) const;

  CurveParams params_;
  MontCtx fp_;
  MontCtx fn_;
  U384 a_mont_;  // -3 mod p, Montgomery domain
  U384 b_mont_;
  U384 sqrt_exp_;  // (p + 1) / 4 — both primes are 3 mod 4
  unsigned order_bits_;
  unsigned half_bits_;  // Strauss–Shamir split point (multiple of 64)
  std::unique_ptr<ecp::FixedBaseTable> fixed_base_;
  std::unique_ptr<ecp::VerifyTableCache> verify_cache_;
};

/// Process-wide singletons (curve construction precomputes Montgomery
/// constants and the generator's fixed-base table; reuse them).
const Curve& p256();
const Curve& p384();

}  // namespace revelio::crypto

// Short Weierstrass elliptic curves: NIST P-256 and P-384.
//
// Both curves have a = -3, which the Jacobian doubling formula exploits.
// P-384 signs SEV-SNP attestation reports and the VCEK/ASK/ARK chain
// (matching AMD's real deployment); P-256 serves VM TLS identities where
// smaller keys keep handshakes cheap.
#pragma once

#include <string>

#include "common/bytes.hpp"
#include "crypto/bigint.hpp"

namespace revelio::crypto {

struct CurveParams {
  std::string name;
  U384 p;   // field prime
  U384 b;   // curve coefficient (a is fixed to -3)
  U384 gx;  // base point
  U384 gy;
  U384 n;   // base point order
  std::size_t byte_length;  // field element encoding size
};

const CurveParams& p256_params();
const CurveParams& p384_params();

/// A curve with precomputed Montgomery contexts for its two prime fields.
class Curve {
 public:
  explicit Curve(const CurveParams& params);

  /// Affine point in the plain (non-Montgomery) domain.
  struct Point {
    U384 x;
    U384 y;
    bool infinity = false;

    static Point at_infinity() { return Point{{}, {}, true}; }

    /// Uncompressed SEC1 encoding: 0x04 || X || Y.
    Bytes encode(std::size_t coord_len) const;
  };

  const CurveParams& params() const { return params_; }
  const MontCtx& field() const { return fp_; }
  const MontCtx& scalar_field() const { return fn_; }

  Point generator() const { return Point{params_.gx, params_.gy, false}; }

  /// Checks y^2 == x^3 - 3x + b (mod p).
  bool on_curve(const Point& pt) const;

  Point add(const Point& a, const Point& b) const;
  Point scalar_mult(const U384& k, const Point& pt) const;
  Point scalar_mult_base(const U384& k) const;

  /// Decodes an uncompressed SEC1 point and validates it is on the curve.
  /// Returns infinity on malformed input (callers reject infinity).
  Point decode_point(ByteView encoded) const;

  /// Encodes with this curve's coordinate size.
  Bytes encode_point(const Point& pt) const {
    return pt.encode(params_.byte_length);
  }

 private:
  CurveParams params_;
  MontCtx fp_;
  MontCtx fn_;
  U384 a_mont_;  // -3 mod p, Montgomery domain
  U384 b_mont_;
};

/// Process-wide singletons (curve construction precomputes Montgomery
/// constants; reuse them).
const Curve& p256();
const Curve& p384();

}  // namespace revelio::crypto

// Short Weierstrass elliptic curves: NIST P-256 and P-384.
//
// Both curves have a = -3, which the Jacobian doubling formula exploits.
// P-384 signs SEV-SNP attestation reports and the VCEK/ASK/ARK chain
// (matching AMD's real deployment); P-256 serves VM TLS identities where
// smaller keys keep handshakes cheap.
//
// Scalar multiplication runs on three fast paths (see ec_precomp.hpp and
// DESIGN.md "Crypto fast paths"): wNAF for arbitrary points, a fixed-base
// window table for the generator, and Strauss–Shamir interleaving with a
// per-public-key LRU table cache for the u1*G + u2*Q form ECDSA
// verification needs. The naive double-and-add ladder is kept as
// `scalar_mult_naive` — the reference the property tests compare against.
#pragma once

#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/bigint.hpp"
#include "crypto/ec_precomp.hpp"

namespace revelio::crypto {

struct CurveParams {
  std::string name;
  U384 p;   // field prime
  U384 b;   // curve coefficient (a is fixed to -3)
  U384 gx;  // base point
  U384 gy;
  U384 n;   // base point order
  std::size_t byte_length;  // field element encoding size
};

const CurveParams& p256_params();
const CurveParams& p384_params();

/// A curve with precomputed Montgomery contexts for its two prime fields
/// plus the fixed-base table for its generator.
class Curve {
 public:
  explicit Curve(const CurveParams& params);

  /// Affine point in the plain (non-Montgomery) domain.
  struct Point {
    U384 x;
    U384 y;
    bool infinity = false;

    static Point at_infinity() { return Point{{}, {}, true}; }

    /// Uncompressed SEC1 encoding: 0x04 || X || Y.
    Bytes encode(std::size_t coord_len) const;
  };

  const CurveParams& params() const { return params_; }
  const MontCtx& field() const { return fp_; }
  const MontCtx& scalar_field() const { return fn_; }

  Point generator() const { return Point{params_.gx, params_.gy, false}; }

  /// Checks y^2 == x^3 - 3x + b (mod p).
  bool on_curve(const Point& pt) const;

  Point add(const Point& a, const Point& b) const;

  /// k * pt via width-5 wNAF with an on-the-fly odd-multiples table.
  /// Both curves have cofactor 1, so k is reduced mod n first.
  Point scalar_mult(const U384& k, const Point& pt) const;

  /// k * G via the fixed-base window table: one mixed addition per nonzero
  /// radix-16 digit of k, no doublings.
  Point scalar_mult_base(const U384& k) const;

  /// u1 * G + u2 * Q in one pass: fixed-base table for the G term,
  /// Strauss–Shamir over a half-length shared doubling chain for the Q term
  /// (u2 split at half the order bits against cached tables for Q and
  /// 2^half * Q). This is the ECDSA verification hot path.
  Point double_scalar_mult_base(const U384& u1, const U384& u2,
                                const Point& q) const;

  /// Reference MSB-first double-and-add ladder. Slow; exists so tests and
  /// benchmarks can compare the optimized paths against it.
  Point scalar_mult_naive(const U384& k, const Point& pt) const;

  /// Decodes an uncompressed SEC1 point and validates it. Distinct error
  /// codes let callers tell a parse failure ("ec.bad_point_encoding"),
  /// a non-canonical coordinate ("ec.coordinate_out_of_range"), and an
  /// off-curve point ("ec.point_not_on_curve") apart; a decoded point is
  /// never the point at infinity.
  Result<Point> decode_point(ByteView encoded) const;

  /// Encodes with this curve's coordinate size.
  Bytes encode_point(const Point& pt) const {
    return pt.encode(params_.byte_length);
  }

  /// Stats of the per-public-key verification table cache.
  ecp::VerifyTableCache::Stats verify_cache_stats() const {
    return verify_cache_->stats();
  }

 private:
  U384 reduce_scalar(const U384& k) const;
  Point to_affine(const ecp::Jac& p) const;
  std::shared_ptr<const ecp::VerifyTables> tables_for(const Point& q) const;

  CurveParams params_;
  MontCtx fp_;
  MontCtx fn_;
  U384 a_mont_;  // -3 mod p, Montgomery domain
  U384 b_mont_;
  unsigned order_bits_;
  unsigned half_bits_;  // Strauss–Shamir split point (multiple of 64)
  std::unique_ptr<ecp::FixedBaseTable> fixed_base_;
  std::unique_ptr<ecp::VerifyTableCache> verify_cache_;
};

/// Process-wide singletons (curve construction precomputes Montgomery
/// constants and the generator's fixed-base table; reuse them).
const Curve& p256();
const Curve& p384();

}  // namespace revelio::crypto

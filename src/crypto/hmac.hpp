// HMAC (FIPS 198-1) over any SHA-2 instance in this library.
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha2.hpp"

namespace revelio::crypto {

/// Streaming HMAC, templated on the hash (Sha256, Sha384, Sha512).
template <typename Hash>
class Hmac {
 public:
  using Digest = typename Hash::Digest;
  static constexpr std::size_t kBlockSize = Hash::kBlockSize;

  explicit Hmac(ByteView key) {
    std::uint8_t k[kBlockSize] = {};
    if (key.size() > kBlockSize) {
      Hash h;
      h.update(key);
      const auto d = h.finish();
      std::copy(d.begin(), d.end(), k);
    } else {
      std::copy(key.begin(), key.end(), k);
    }
    std::uint8_t ipad[kBlockSize];
    for (std::size_t i = 0; i < kBlockSize; ++i) {
      ipad[i] = k[i] ^ 0x36;
      opad_[i] = k[i] ^ 0x5c;
    }
    inner_.update(ByteView(ipad, kBlockSize));
  }

  void update(ByteView data) { inner_.update(data); }

  Digest finish() {
    const Digest inner_digest = inner_.finish();
    Hash outer;
    outer.update(ByteView(opad_, kBlockSize));
    outer.update(inner_digest.view());
    return outer.finish();
  }

 private:
  Hash inner_;
  std::uint8_t opad_[kBlockSize];
};

using HmacSha256 = Hmac<Sha256>;
using HmacSha384 = Hmac<Sha384>;
using HmacSha512 = Hmac<Sha512>;

/// One-shot HMAC-SHA256.
Digest32 hmac_sha256(ByteView key, ByteView data);
/// One-shot HMAC-SHA384.
Digest48 hmac_sha384(ByteView key, ByteView data);

}  // namespace revelio::crypto

// Fixed-width 384-bit unsigned integers and Montgomery modular arithmetic.
//
// Sized for NIST P-384 (the curve AMD uses for VCEK signatures); P-256
// values run in the same width. Montgomery multiplication (CIOS) keeps
// scalar multiplication fast enough that the test suite's thousands of
// ECDSA operations stay cheap.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"

namespace revelio::crypto {

/// 384-bit unsigned integer; little-endian limb order.
struct U384 {
  static constexpr std::size_t kLimbs = 6;
  std::array<std::uint64_t, kLimbs> limbs{};

  static U384 zero() { return U384{}; }
  static U384 from_u64(std::uint64_t v) {
    U384 r;
    r.limbs[0] = v;
    return r;
  }

  /// Big-endian byte decoding; accepts up to 48 bytes.
  static U384 from_bytes_be(ByteView bytes);

  /// Parses a hex string (no 0x prefix); must describe <= 48 bytes.
  static U384 from_hex(std::string_view hex);

  /// Big-endian byte encoding, fixed output length (zero-padded).
  Bytes to_bytes_be(std::size_t length = 48) const;

  bool is_zero() const {
    for (auto l : limbs) {
      if (l != 0) return false;
    }
    return true;
  }

  bool bit(std::size_t i) const {
    return (limbs[i / 64] >> (i % 64)) & 1;
  }

  std::size_t bit_length() const;

  /// -1 / 0 / +1 three-way comparison.
  int cmp(const U384& other) const;

  friend bool operator==(const U384& a, const U384& b) {
    return a.limbs == b.limbs;
  }
  friend bool operator<(const U384& a, const U384& b) {
    return a.cmp(b) < 0;
  }
};

/// r = a + b; returns the carry out.
std::uint64_t add_with_carry(U384& r, const U384& a, const U384& b);
/// r = a - b; returns the borrow out.
std::uint64_t sub_with_borrow(U384& r, const U384& a, const U384& b);

/// Montgomery arithmetic context for an odd modulus m < 2^384.
/// Values passed to mul/pow/inv must be in the Montgomery domain.
class MontCtx {
 public:
  explicit MontCtx(const U384& modulus);

  const U384& modulus() const { return m_; }

  /// Maps a (plain, possibly >= m) into the Montgomery domain, reducing
  /// mod m on the way.
  U384 to_mont(const U384& a) const { return mul(a, r2_); }

  /// Maps back to the plain domain.
  U384 from_mont(const U384& a) const { return mul(a, U384::from_u64(1)); }

  /// Reduces a plain value mod m.
  U384 reduce(const U384& a) const { return from_mont(to_mont(a)); }

  /// Montgomery multiplication: a*b*R^-1 mod m.
  U384 mul(const U384& a, const U384& b) const;

  /// Modular addition (either domain, operands < m).
  U384 add(const U384& a, const U384& b) const;
  /// Modular subtraction (either domain, operands < m).
  U384 sub(const U384& a, const U384& b) const;

  /// a^e mod m; a in Montgomery domain, e plain; result Montgomery domain.
  U384 pow(const U384& a, const U384& e) const;

  /// Modular inverse via Fermat (modulus must be prime); Montgomery domain.
  U384 inv(const U384& a) const;

  /// R mod m — the Montgomery representation of 1.
  U384 one() const { return one_; }

 private:
  U384 m_;
  U384 r2_;   // R^2 mod m
  U384 one_;  // R mod m
  std::uint64_t n0_;  // -m^-1 mod 2^64
};

}  // namespace revelio::crypto

// Block-cipher modes of operation.
//
//  - AES-XTS (IEEE 1619): sector-level encryption for the dm-crypt target
//    ("aes-xts-plain64" in the paper's cryptsetup configuration).
//  - AES-CTR: stream encryption substrate.
//  - AeadCtrHmac: encrypt-then-MAC AEAD (AES-256-CTR + HMAC-SHA256) used by
//    TLS-lite records and sealed-blob storage.
#pragma once

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/aes.hpp"

namespace revelio::crypto {

/// AES-XTS for fixed-size data units (sectors). The "plain64" tweak regime:
/// the tweak is the little-endian 64-bit sector number, as dm-crypt does.
class AesXts {
 public:
  /// `key` is the concatenation of the data key and the tweak key
  /// (32 or 64 bytes total).
  explicit AesXts(ByteView key);

  /// Encrypts one data unit in place. `data.size()` must be a non-zero
  /// multiple of 16 (true for all sector sizes we use).
  void encrypt_sector(std::uint64_t sector, std::span<std::uint8_t> data) const;
  void decrypt_sector(std::uint64_t sector, std::span<std::uint8_t> data) const;

 private:
  void process_sector(std::uint64_t sector, std::span<std::uint8_t> data,
                      bool encrypt) const;

  Aes data_cipher_;
  Aes tweak_cipher_;
};

/// AES-CTR keystream applied in place (encrypt == decrypt).
void aes_ctr_xor(const Aes& cipher, const FixedBytes<16>& iv,
                 std::span<std::uint8_t> data);

/// Authenticated encryption: AES-256-CTR then HMAC-SHA256 over
/// nonce || aad || ciphertext. Output layout: nonce(16) || ct || tag(32).
class AeadCtrHmac {
 public:
  /// `key` is 64 bytes: 32-byte encryption key || 32-byte MAC key.
  explicit AeadCtrHmac(ByteView key);

  /// Key size expected by the constructor.
  static constexpr std::size_t kKeySize = 64;
  static constexpr std::size_t kNonceSize = 16;
  static constexpr std::size_t kTagSize = 32;
  static constexpr std::size_t kOverhead = kNonceSize + kTagSize;

  Bytes seal(ByteView nonce, ByteView aad, ByteView plaintext) const;
  Result<Bytes> open(ByteView aad, ByteView sealed) const;

 private:
  Aes enc_cipher_;  // schedule expanded once, not per seal/open call
  Bytes mac_key_;
};

}  // namespace revelio::crypto

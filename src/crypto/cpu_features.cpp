#include "crypto/cpu_features.hpp"

#include <cstdlib>

namespace revelio::crypto {

namespace {

bool isa_disabled() {
  const char* env = std::getenv("REVELIO_NO_ISA");
  return env != nullptr && env[0] == '1';
}

}  // namespace

bool cpu_has_sha_ni() {
#if defined(__x86_64__) && defined(__GNUC__)
  static const bool has = __builtin_cpu_supports("sha") &&
                          __builtin_cpu_supports("sse4.1") && !isa_disabled();
  return has;
#else
  return false;
#endif
}

bool cpu_has_aes_ni() {
#if defined(__x86_64__) && defined(__GNUC__)
  static const bool has = __builtin_cpu_supports("aes") &&
                          __builtin_cpu_supports("sse4.1") && !isa_disabled();
  return has;
#else
  return false;
#endif
}

bool cpu_has_avx2() {
#if defined(__x86_64__) && defined(__GNUC__)
  static const bool has = __builtin_cpu_supports("avx2") && !isa_disabled();
  return has;
#else
  return false;
#endif
}

}  // namespace revelio::crypto

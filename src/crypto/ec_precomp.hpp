// Precomputation machinery for fast elliptic-curve scalar multiplication.
//
// Three layers, all operating on Montgomery-domain coordinates:
//
//  * Jacobian/affine point formulas (a = -3 short Weierstrass) shared by the
//    naive ladder in ec.cpp and every fast path here. Mixed addition against
//    an affine table entry saves ~5 field mults over the general formula.
//  * wNAF recoding plus odd-multiple tables: a width-w signed-digit window
//    cuts the additions in a k*P ladder from ~bits/2 to ~bits/(w+1), and the
//    signed digits get point negation for free (negate y).
//  * Fixed-base window tables for each curve generator and a bounded LRU of
//    per-public-key tables, so the attestation hot path (the same ARK / ASK /
//    VCEK keys verified every session) skips both the doubling chain and the
//    table build.
//
// None of this is constant-time: lookups index tables by scalar digits. See
// DESIGN.md ("Crypto fast paths") for why that is acceptable for the verify
// side (public data only) and what the sign side would need instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/bigint.hpp"

namespace revelio::crypto::ecp {

/// Jacobian coordinates (X, Y, Z) with x = X/Z^2, y = Y/Z^3; all coordinates
/// in the Montgomery domain. Z == 0 encodes the point at infinity.
struct Jac {
  U384 x;
  U384 y;
  U384 z;

  bool is_inf() const { return z.is_zero(); }
  static Jac inf() { return Jac{}; }
};

/// Affine Montgomery-domain point (implicit Z = 1); table entry format.
struct Aff {
  U384 x;
  U384 y;
  bool inf = true;
};

/// Doubling with a = -3 (dbl-2001-b).
Jac jac_double(const MontCtx& fp, const Jac& p);

/// General Jacobian addition (add-2007-bl without Z caching).
Jac jac_add(const MontCtx& fp, const Jac& a, const Jac& b);

/// Mixed addition: Jacobian + affine (madd-2007-bl shape, 8M + 3S).
Jac jac_add_affine(const MontCtx& fp, const Jac& a, const Aff& b);

/// Lifts an affine table entry to Jacobian.
Jac jac_from_affine(const MontCtx& fp, const Aff& a);

/// Normalizes many Jacobian points to affine with a single field inversion
/// (Montgomery's simultaneous-inversion trick). Infinity maps to inf entries.
std::vector<Aff> batch_normalize(const MontCtx& fp, const std::vector<Jac>& pts);

/// Width-w non-adjacent form of k, least-significant digit first. Digits are
/// zero or odd with |d| < 2^w. Requires k < 2^384 - 2^w (callers reduce mod
/// the curve order first, which guarantees it).
std::vector<std::int8_t> wnaf_recode(const U384& k, unsigned width);

/// Odd multiples {1, 3, 5, ..., 2^(w-1)-1... } of a point: table[i] holds
/// (2i+1) * P in Montgomery affine. Sized for wNAF width `width`.
std::vector<Aff> odd_multiples(const MontCtx& fp, const Jac& p, unsigned width);

/// Odd-multiple tables for MANY points at once, normalized together: the
/// whole batch shares a single field inversion instead of one per point.
/// This is what makes per-signature R tables affordable in batch ECDSA
/// verification — at N=64 the per-table inversions would otherwise rival
/// the ladder itself.
std::vector<std::vector<Aff>> odd_multiples_many(const MontCtx& fp,
                                                 const std::vector<Jac>& pts,
                                                 unsigned width);

/// Fixed-base precomputation for one curve generator: radix-16 windows with
/// per-window multiple tables, windows_[i][d-1] = d * 16^i * G. A base-point
/// multiplication then costs one mixed addition per nonzero window digit and
/// no doublings at all.
class FixedBaseTable {
 public:
  /// `g` is the generator in Montgomery affine; `scalar_bits` bounds the
  /// scalars that will be passed to mul (the curve order's bit length,
  /// rounded up to a whole window).
  FixedBaseTable(const MontCtx& fp, const Aff& g, unsigned scalar_bits);

  /// k * G for k < 2^scalar_bits. Montgomery-domain Jacobian result.
  Jac mul(const MontCtx& fp, const U384& k) const;

  unsigned scalar_bits() const { return windows_ * kWindowBits; }
  std::size_t memory_bytes() const {
    return table_.size() * sizeof(Aff);
  }

  static constexpr unsigned kWindowBits = 4;

 private:
  const Aff& entry(unsigned window, unsigned digit) const {
    return table_[window * 15 + (digit - 1)];
  }

  unsigned windows_;
  std::vector<Aff> table_;  // windows_ x 15 entries, digit-major
};

/// Per-public-key precomputation used by Strauss–Shamir verification: odd
/// multiples of Q and of 2^half * Q, so u2 * Q runs as two half-length
/// scalars over one shared doubling chain.
struct VerifyTables {
  std::vector<Aff> low;    // odd multiples of Q
  std::vector<Aff> high;   // odd multiples of 2^half_bits * Q
  unsigned half_bits = 0;
  unsigned width = 0;
};

/// Bounded LRU cache of VerifyTables keyed by the SEC1 point encoding.
/// Thread-safe; entries are shared_ptr so an eviction cannot invalidate a
/// table mid-verification.
class VerifyTableCache {
 public:
  explicit VerifyTableCache(std::size_t capacity) : capacity_(capacity) {}

  std::shared_ptr<const VerifyTables> get(const Bytes& key);
  void put(const Bytes& key, std::shared_ptr<const VerifyTables> tables);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  Stats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::shared_ptr<const VerifyTables> tables;
    std::list<Bytes>::iterator lru_it;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Bytes> lru_;  // front = most recently used
  std::map<Bytes, Entry> entries_;
  Stats stats_;
};

/// Process-wide registry of PINNED verification tables for well-known bases
/// (the AMD ARK/ASK and the fleet's VCEKs — the same handful of keys every
/// session verifies against). Unlike the LRU above, entries are immutable
/// once pinned and are never evicted, so readers take only a shared lock and
/// never mutate list structure; thousands of concurrent session threads can
/// hit the same table without serializing on a splice. Bounded at kCapacity
/// pins; beyond that, pin() refuses and callers fall back to the LRU.
class PinnedTableRegistry {
 public:
  /// Pins for every curve live in one registry: keys are SEC1 encodings,
  /// whose length differs per curve, so entries cannot collide.
  static PinnedTableRegistry& instance();

  std::shared_ptr<const VerifyTables> get(const Bytes& key) const;

  /// Pins `tables` under `key`. Returns false (and pins nothing) when the
  /// registry is full; returns true when pinned now or already present.
  bool pin(const Bytes& key, std::shared_ptr<const VerifyTables> tables);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t pinned = 0;
  };
  Stats stats() const;

  /// A pinned table is ~3 KiB; 16 pins cover ARK + ASK + a fleet's VCEKs
  /// while bounding the never-freed footprint at ~48 KiB.
  static constexpr std::size_t kCapacity = 16;

 private:
  PinnedTableRegistry() = default;

  mutable std::shared_mutex mutex_;
  std::map<Bytes, std::shared_ptr<const VerifyTables>> entries_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace revelio::crypto::ecp

#include "crypto/ecies.hpp"

#include "crypto/kdf.hpp"
#include "crypto/modes.hpp"

namespace revelio::crypto {

namespace {
Bytes derive_aead_key(ByteView shared_secret, ByteView eph_pub,
                      ByteView recipient_pub) {
  const Bytes info = concat(std::string_view("ecies-v1"), eph_pub,
                            recipient_pub);
  return hkdf_sha256(shared_secret, {}, info, AeadCtrHmac::kKeySize);
}
}  // namespace

Result<Bytes> ecies_seal(const Curve& curve, ByteView recipient_pub,
                         ByteView plaintext, HmacDrbg& drbg) {
  const auto recipient = curve.decode_point(recipient_pub);
  if (!recipient.ok()) {
    return Error::make("ecies.bad_recipient_key",
                       recipient.error().to_string());
  }
  const EcKeyPair eph = ec_generate(curve, drbg);
  auto shared = ecdh_shared_secret(curve, eph.d, *recipient);
  if (!shared.ok()) return shared.error();
  const Bytes eph_pub = eph.public_encoded(curve);
  const AeadCtrHmac aead(derive_aead_key(*shared, eph_pub, recipient_pub));
  const Bytes nonce = drbg.generate(AeadCtrHmac::kNonceSize);

  Bytes out;
  append_u32be(out, static_cast<std::uint32_t>(eph_pub.size()));
  append(out, eph_pub);
  append(out, aead.seal(nonce, eph_pub, plaintext));
  return out;
}

Result<Bytes> ecies_open(const Curve& curve, const U384& recipient_priv,
                         ByteView sealed) {
  if (sealed.size() < 4) return Error::make("ecies.truncated");
  const std::uint32_t eph_len = read_u32be(sealed, 0);
  if (4 + eph_len > sealed.size()) return Error::make("ecies.truncated");
  const ByteView eph_pub = sealed.subspan(4, eph_len);
  const auto eph_point = curve.decode_point(eph_pub);
  if (!eph_point.ok()) {
    return Error::make("ecies.bad_ephemeral", eph_point.error().to_string());
  }
  auto shared = ecdh_shared_secret(curve, recipient_priv, *eph_point);
  if (!shared.ok()) return shared.error();
  const Bytes recipient_pub =
      curve.encode_point(curve.scalar_mult_base(recipient_priv));
  const AeadCtrHmac aead(derive_aead_key(*shared, eph_pub, recipient_pub));
  return aead.open(eph_pub, sealed.subspan(4 + eph_len));
}

}  // namespace revelio::crypto

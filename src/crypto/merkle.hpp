// Binary Merkle tree over fixed-size data blocks (SHA-256).
//
// This is the hash structure behind the dm-verity target: the builder hashes
// every 4 KiB block, then hashes hash-blocks upward until a single root
// remains. Verification recomputes one leaf and its path. Leaves and inner
// nodes use distinct domain-separation prefixes so a leaf can never be
// replayed as an inner node.
//
// Construction (leaf hashing, level reduction) and the deserialize
// recompute check run through common::parallel_for: every node of a level
// depends only on its two children, so a static chunking over the output
// level is bit-identical to the sequential build (tier-2 suite
// test_merkle_parallel asserts this across shapes).
#pragma once

#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/sha2.hpp"

namespace revelio::crypto {

class MerkleTree {
 public:
  /// Builds the tree bottom-up from precomputed leaf digests.
  static MerkleTree from_leaves(std::vector<Digest32> leaves);

  /// Convenience: hash each block with the leaf prefix, then build.
  static MerkleTree from_blocks(ByteView data, std::size_t block_size);

  const Digest32& root() const { return root_; }
  std::size_t leaf_count() const { return leaf_count_; }

  /// Number of levels (0 for the empty tree); level 0 holds the leaves and
  /// the last level the single root node.
  std::size_t level_count() const { return levels_.size(); }
  /// Nodes of one level. The dm-verity read path walks these in place
  /// instead of materialising a sibling-path vector per read.
  const std::vector<Digest32>& level(std::size_t i) const { return levels_[i]; }

  /// Authentication path for leaf `index` (sibling hashes, bottom-up).
  std::vector<Digest32> path(std::size_t index) const;

  /// Verifies that `leaf` is leaf number `index` of a tree with `root`.
  static bool verify_path(const Digest32& leaf, std::size_t index,
                          const std::vector<Digest32>& path,
                          std::size_t leaf_count, const Digest32& root);

  /// Domain-separated hashes.
  static Digest32 hash_leaf(ByteView block);
  static Digest32 hash_inner(const Digest32& left, const Digest32& right);

  /// Serialized level-by-level representation (the "hash device" contents
  /// dm-verity stores next to the data device).
  Bytes serialize() const;
  static Result<MerkleTree> deserialize(ByteView data);

 private:
  // levels_[0] = leaves; last level has a single node (the root).
  std::vector<std::vector<Digest32>> levels_;
  Digest32 root_;
  std::size_t leaf_count_ = 0;
};

}  // namespace revelio::crypto

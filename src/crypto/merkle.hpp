// Binary Merkle tree over fixed-size data blocks (SHA-256).
//
// This is the hash structure behind the dm-verity target: the builder hashes
// every 4 KiB block, then hashes hash-blocks upward until a single root
// remains. Verification recomputes one leaf and its path. Leaves and inner
// nodes use distinct domain-separation prefixes so a leaf can never be
// replayed as an inner node.
#pragma once

#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/sha2.hpp"

namespace revelio::crypto {

class MerkleTree {
 public:
  /// Builds the tree bottom-up from precomputed leaf digests.
  static MerkleTree from_leaves(std::vector<Digest32> leaves);

  /// Convenience: hash each block with the leaf prefix, then build.
  static MerkleTree from_blocks(ByteView data, std::size_t block_size);

  const Digest32& root() const { return root_; }
  std::size_t leaf_count() const { return leaf_count_; }

  /// Authentication path for leaf `index` (sibling hashes, bottom-up).
  std::vector<Digest32> path(std::size_t index) const;

  /// Verifies that `leaf` is leaf number `index` of a tree with `root`.
  static bool verify_path(const Digest32& leaf, std::size_t index,
                          const std::vector<Digest32>& path,
                          std::size_t leaf_count, const Digest32& root);

  /// Domain-separated hashes.
  static Digest32 hash_leaf(ByteView block);
  static Digest32 hash_inner(const Digest32& left, const Digest32& right);

  /// Serialized level-by-level representation (the "hash device" contents
  /// dm-verity stores next to the data device).
  Bytes serialize() const;
  static Result<MerkleTree> deserialize(ByteView data);

 private:
  // levels_[0] = leaves; last level has a single node (the root).
  std::vector<std::vector<Digest32>> levels_;
  Digest32 root_;
  std::size_t leaf_count_ = 0;
};

}  // namespace revelio::crypto

#include "crypto/hmac.hpp"

namespace revelio::crypto {

Digest32 hmac_sha256(ByteView key, ByteView data) {
  HmacSha256 mac(key);
  mac.update(data);
  return mac.finish();
}

Digest48 hmac_sha384(ByteView key, ByteView data) {
  HmacSha384 mac(key);
  mac.update(data);
  return mac.finish();
}

}  // namespace revelio::crypto

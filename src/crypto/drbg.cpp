#include "crypto/drbg.hpp"

#include "crypto/hmac.hpp"

namespace revelio::crypto {

HmacDrbg::HmacDrbg(ByteView entropy, ByteView personalization) {
  key_.data.fill(0x00);
  v_.data.fill(0x01);
  const Bytes seed = concat(entropy, personalization);
  update(seed);
}

void HmacDrbg::update(ByteView provided) {
  {
    HmacSha256 mac(key_.view());
    mac.update(v_.view());
    const std::uint8_t zero = 0x00;
    mac.update(ByteView(&zero, 1));
    mac.update(provided);
    key_ = mac.finish();
    v_ = hmac_sha256(key_.view(), v_.view());
  }
  if (!provided.empty()) {
    HmacSha256 mac(key_.view());
    mac.update(v_.view());
    const std::uint8_t one = 0x01;
    mac.update(ByteView(&one, 1));
    mac.update(provided);
    key_ = mac.finish();
    v_ = hmac_sha256(key_.view(), v_.view());
  }
}

Bytes HmacDrbg::generate(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    v_ = hmac_sha256(key_.view(), v_.view());
    const std::size_t take = std::min<std::size_t>(32, n - out.size());
    out.insert(out.end(), v_.begin(), v_.begin() + take);
  }
  update({});
  return out;
}

void HmacDrbg::reseed(ByteView entropy) { update(entropy); }

}  // namespace revelio::crypto

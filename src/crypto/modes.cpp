#include "crypto/modes.hpp"

#include <cassert>
#include <cstring>

#include "crypto/hmac.hpp"

namespace revelio::crypto {

namespace {

/// Multiplies a 128-bit GF(2^128) element (little-endian byte order, as in
/// XTS) by the primitive element alpha (x). Word-wise: one shift + carry
/// propagation across two 64-bit halves instead of 16 byte-serial steps —
/// this runs 255 times per 4 KiB sector, right behind the cipher itself.
inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline void store_le64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline void gf128_mul_alpha(std::uint8_t t[16]) {
  const std::uint64_t lo = load_le64(t);
  const std::uint64_t hi = load_le64(t + 8);
  const std::uint64_t carry = hi >> 63;
  store_le64(t, (lo << 1) ^ (carry * 0x87));
  store_le64(t + 8, (hi << 1) | (lo >> 63));
}

}  // namespace

AesXts::AesXts(ByteView key)
    : data_cipher_(key.subspan(0, key.size() / 2)),
      tweak_cipher_(key.subspan(key.size() / 2)) {
  assert(key.size() == 32 || key.size() == 64);
}

void AesXts::process_sector(std::uint64_t sector,
                            std::span<std::uint8_t> data,
                            bool encrypt) const {
  assert(!data.empty() && data.size() % 16 == 0);
  // plain64 tweak: little-endian sector number in the first 8 bytes.
  std::uint8_t tweak[16] = {};
  for (int i = 0; i < 8; ++i) {
    tweak[i] = static_cast<std::uint8_t>(sector >> (8 * i));
  }
  std::uint8_t t[16];
  tweak_cipher_.encrypt_block(tweak, t);

  for (std::size_t off = 0; off < data.size(); off += 16) {
    std::uint8_t block[16];
    for (int i = 0; i < 16; ++i) block[i] = data[off + i] ^ t[i];
    std::uint8_t out[16];
    if (encrypt) {
      data_cipher_.encrypt_block(block, out);
    } else {
      data_cipher_.decrypt_block(block, out);
    }
    for (int i = 0; i < 16; ++i) data[off + i] = out[i] ^ t[i];
    gf128_mul_alpha(t);
  }
}

void AesXts::encrypt_sector(std::uint64_t sector,
                            std::span<std::uint8_t> data) const {
  process_sector(sector, data, true);
}

void AesXts::decrypt_sector(std::uint64_t sector,
                            std::span<std::uint8_t> data) const {
  process_sector(sector, data, false);
}

void aes_ctr_xor(const Aes& cipher, const FixedBytes<16>& iv,
                 std::span<std::uint8_t> data) {
  std::uint8_t counter[16];
  std::memcpy(counter, iv.data.data(), 16);
  std::uint8_t keystream[16];
  std::size_t off = 0;
  while (off < data.size()) {
    cipher.encrypt_block(counter, keystream);
    const std::size_t take = std::min<std::size_t>(16, data.size() - off);
    for (std::size_t i = 0; i < take; ++i) data[off + i] ^= keystream[i];
    off += take;
    // Increment the big-endian counter.
    for (int i = 15; i >= 0; --i) {
      if (++counter[i] != 0) break;
    }
  }
}

AeadCtrHmac::AeadCtrHmac(ByteView key)
    : enc_cipher_(key.subspan(0, 32)),
      mac_key_(to_bytes(key.subspan(32, 32))) {
  assert(key.size() == kKeySize);
}

Bytes AeadCtrHmac::seal(ByteView nonce, ByteView aad,
                        ByteView plaintext) const {
  assert(nonce.size() == kNonceSize);
  Bytes ct = to_bytes(plaintext);
  aes_ctr_xor(enc_cipher_, FixedBytes<16>::from(nonce), ct);

  HmacSha256 mac(mac_key_);
  mac.update(nonce);
  Bytes aad_len;
  append_u64be(aad_len, aad.size());
  mac.update(aad_len);
  mac.update(aad);
  mac.update(ct);
  const Digest32 tag = mac.finish();

  Bytes out = concat(nonce, ct, tag.view());
  return out;
}

Result<Bytes> AeadCtrHmac::open(ByteView aad, ByteView sealed) const {
  if (sealed.size() < kOverhead) {
    return Error::make("aead.truncated", "sealed blob shorter than overhead");
  }
  const ByteView nonce = sealed.subspan(0, kNonceSize);
  const ByteView ct = sealed.subspan(kNonceSize, sealed.size() - kOverhead);
  const ByteView tag = sealed.subspan(sealed.size() - kTagSize);

  HmacSha256 mac(mac_key_);
  mac.update(nonce);
  Bytes aad_len;
  append_u64be(aad_len, aad.size());
  mac.update(aad_len);
  mac.update(aad);
  mac.update(ct);
  const Digest32 expect = mac.finish();
  if (!ct_equal(expect.view(), tag)) {
    return Error::make("aead.bad_tag", "authentication tag mismatch");
  }

  Bytes pt = to_bytes(ct);
  aes_ctr_xor(enc_cipher_, FixedBytes<16>::from(nonce), pt);
  return pt;
}

}  // namespace revelio::crypto

// HMAC-DRBG (NIST SP 800-90A) with SHA-256.
//
// All key material in the simulation — chip endorsement keys, VM TLS
// identities, nonces — is drawn from seeded HMAC-DRBG instances, so runs
// are deterministic (mirrors a guest seeding its CSPRNG from virtio-rng /
// RDSEED while keeping requirement F5's reproducibility for tests).
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha2.hpp"

namespace revelio::crypto {

class HmacDrbg {
 public:
  /// Instantiates with entropy || nonce || personalization as seed material.
  explicit HmacDrbg(ByteView entropy, ByteView personalization = {});

  /// Generates `n` pseudorandom bytes.
  Bytes generate(std::size_t n);

  /// Mixes additional entropy into the state.
  void reseed(ByteView entropy);

 private:
  void update(ByteView provided);

  Digest32 key_;
  Digest32 v_;
};

}  // namespace revelio::crypto

#include "crypto/merkle.hpp"

#include <atomic>
#include <cstring>

#include "common/parallel.hpp"

namespace revelio::crypto {

namespace {
constexpr std::uint8_t kLeafPrefix = 0x00;
constexpr std::uint8_t kInnerPrefix = 0x01;

// Smallest per-chunk node count worth shipping to a pool worker: below this
// the hash work is cheaper than the wake-up.
constexpr std::size_t kLeafGrain = 64;    // 64 x 4 KiB SHA-256 ≈ 1 ms scalar
constexpr std::size_t kInnerGrain = 512;  // inner hashes are 65-byte inputs

// Computes parent nodes [i, i+8) of the level above `below` in one 8-way
// multi-buffer pass. Inner inputs are a uniform 65 bytes (prefix + two
// digests), exactly the lockstep shape Sha256x8 wants.
void hash_inner_x8(const std::vector<Digest32>& below, std::size_t i,
                   Digest32 out[Sha256x8::kLanes]) {
  std::uint8_t bufs[Sha256x8::kLanes][65];
  ByteView views[Sha256x8::kLanes];
  for (std::size_t l = 0; l < Sha256x8::kLanes; ++l) {
    const std::size_t j = i + l;
    const Digest32& left = below[2 * j];
    const Digest32& right =
        (2 * j + 1 < below.size()) ? below[2 * j + 1] : below[2 * j];
    bufs[l][0] = kInnerPrefix;
    std::memcpy(bufs[l] + 1, left.view().data(), 32);
    std::memcpy(bufs[l] + 33, right.view().data(), 32);
    views[l] = ByteView(bufs[l], 65);
  }
  sha256_x8(views, out);
}
}  // namespace

Digest32 MerkleTree::hash_leaf(ByteView block) {
  Sha256 h;
  h.update(ByteView(&kLeafPrefix, 1));
  h.update(block);
  return h.finish();
}

Digest32 MerkleTree::hash_inner(const Digest32& left, const Digest32& right) {
  Sha256 h;
  h.update(ByteView(&kInnerPrefix, 1));
  h.update(left.view());
  h.update(right.view());
  return h.finish();
}

MerkleTree MerkleTree::from_leaves(std::vector<Digest32> leaves) {
  MerkleTree tree;
  tree.leaf_count_ = leaves.size();
  if (leaves.empty()) {
    // Root of the empty tree: hash of the empty string with leaf prefix.
    tree.root_ = hash_leaf({});
    return tree;
  }
  tree.levels_.push_back(std::move(leaves));
  while (tree.levels_.back().size() > 1) {
    const auto& below = tree.levels_.back();
    std::vector<Digest32> level((below.size() + 1) / 2);
    common::parallel_for(
        level.size(),
        [&](std::size_t begin, std::size_t end) {
          std::size_t i = begin;
          for (; i + Sha256x8::kLanes <= end; i += Sha256x8::kLanes) {
            hash_inner_x8(below, i, &level[i]);
          }
          for (; i < end; ++i) {
            // Odd node promoted by pairing with itself — keeps the tree
            // total and the path logic uniform.
            const Digest32& left = below[2 * i];
            const Digest32& right =
                (2 * i + 1 < below.size()) ? below[2 * i + 1] : below[2 * i];
            level[i] = hash_inner(left, right);
          }
        },
        kInnerGrain);
    tree.levels_.push_back(std::move(level));
  }
  tree.root_ = tree.levels_.back()[0];
  return tree;
}

MerkleTree MerkleTree::from_blocks(ByteView data, std::size_t block_size) {
  const std::size_t count = (data.size() + block_size - 1) / block_size;
  std::vector<Digest32> leaves(count);
  common::parallel_for(
      count,
      [&](std::size_t begin, std::size_t end) {
        std::size_t i = begin;
        // 8-way fast path over runs of full blocks: the prefix byte and the
        // block bodies are the same length in every lane, so eight leaves
        // ride one multi-buffer schedule. Only the final (possibly short)
        // block ever drops to the scalar tail below.
        for (; i + Sha256x8::kLanes <= end &&
               (i + Sha256x8::kLanes) * block_size <= data.size();
             i += Sha256x8::kLanes) {
          ByteView prefixes[Sha256x8::kLanes];
          ByteView blocks[Sha256x8::kLanes];
          for (std::size_t l = 0; l < Sha256x8::kLanes; ++l) {
            prefixes[l] = ByteView(&kLeafPrefix, 1);
            blocks[l] = data.subspan((i + l) * block_size, block_size);
          }
          Sha256x8 h;
          h.update(prefixes);
          h.update(blocks);
          h.finish(&leaves[i]);
        }
        for (; i < end; ++i) {
          const std::size_t off = i * block_size;
          const std::size_t len = std::min(block_size, data.size() - off);
          // Short tail blocks are zero-padded to the full block size,
          // matching the storage layer where devices are whole numbers of
          // blocks.
          if (len == block_size) {
            leaves[i] = hash_leaf(data.subspan(off, len));
          } else {
            Bytes padded(block_size, 0);
            std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(off), len,
                        padded.begin());
            leaves[i] = hash_leaf(padded);
          }
        }
      },
      kLeafGrain);
  return from_leaves(std::move(leaves));
}

std::vector<Digest32> MerkleTree::path(std::size_t index) const {
  std::vector<Digest32> out;
  if (levels_.empty()) return out;
  std::size_t i = index;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    const std::size_t sibling = (i % 2 == 0) ? i + 1 : i - 1;
    out.push_back(sibling < nodes.size() ? nodes[sibling] : nodes[i]);
    i /= 2;
  }
  return out;
}

bool MerkleTree::verify_path(const Digest32& leaf, std::size_t index,
                             const std::vector<Digest32>& path,
                             std::size_t leaf_count, const Digest32& root) {
  if (index >= leaf_count) return false;
  Digest32 acc = leaf;
  std::size_t i = index;
  for (const Digest32& sibling : path) {
    acc = (i % 2 == 0) ? hash_inner(acc, sibling) : hash_inner(sibling, acc);
    i /= 2;
  }
  return acc == root;
}

Bytes MerkleTree::serialize() const {
  Bytes out;
  append_u64be(out, leaf_count_);
  append_u64be(out, levels_.size());
  for (const auto& level : levels_) {
    append_u64be(out, level.size());
    for (const auto& node : level) append(out, node.view());
  }
  return out;
}

Result<MerkleTree> MerkleTree::deserialize(ByteView data) {
  if (data.size() < 16) return Error::make("merkle.truncated_header");
  MerkleTree tree;
  tree.leaf_count_ = read_u64be(data, 0);
  const std::uint64_t level_count = read_u64be(data, 8);
  std::size_t off = 16;
  for (std::uint64_t l = 0; l < level_count; ++l) {
    if (off + 8 > data.size()) return Error::make("merkle.truncated_level");
    const std::uint64_t node_count = read_u64be(data, off);
    off += 8;
    // Divide instead of multiplying: `node_count * 32` wraps for huge
    // node_count and would accept truncated input.
    if (node_count > (data.size() - off) / 32) {
      return Error::make("merkle.truncated_nodes");
    }
    std::vector<Digest32> level;
    level.reserve(node_count);
    for (std::uint64_t i = 0; i < node_count; ++i) {
      level.push_back(Digest32::from(data.subspan(off, 32)));
      off += 32;
    }
    tree.levels_.push_back(std::move(level));
  }
  if (tree.levels_.empty() || tree.levels_.back().size() != 1) {
    return Error::make("merkle.malformed", "missing root level");
  }
  // Recompute upward to reject tampered serializations. Each level is
  // checked with a parallel sweep; a mismatch anywhere flips one shared
  // flag (the only cross-chunk state, write-only, so the outcome does not
  // depend on chunk order).
  for (std::size_t level = 0; level + 1 < tree.levels_.size(); ++level) {
    const auto& below = tree.levels_[level];
    const auto& above = tree.levels_[level + 1];
    if (above.size() != (below.size() + 1) / 2) {
      return Error::make("merkle.malformed", "bad level size");
    }
    std::atomic<bool> mismatch{false};
    common::parallel_for(
        above.size(),
        [&](std::size_t begin, std::size_t end) {
          std::size_t i = begin;
          for (; i + Sha256x8::kLanes <= end; i += Sha256x8::kLanes) {
            if (mismatch.load(std::memory_order_relaxed)) return;
            Digest32 expect[Sha256x8::kLanes];
            hash_inner_x8(below, i, expect);
            for (std::size_t l = 0; l < Sha256x8::kLanes; ++l) {
              if (!(expect[l] == above[i + l])) {
                mismatch.store(true, std::memory_order_relaxed);
              }
            }
          }
          for (; i < end; ++i) {
            if (mismatch.load(std::memory_order_relaxed)) return;
            const Digest32& left = below[2 * i];
            const Digest32& right =
                (2 * i + 1 < below.size()) ? below[2 * i + 1] : below[2 * i];
            if (!(hash_inner(left, right) == above[i])) {
              mismatch.store(true, std::memory_order_relaxed);
            }
          }
        },
        kInnerGrain);
    if (mismatch.load()) {
      return Error::make("merkle.inconsistent", "inner node mismatch");
    }
  }
  tree.root_ = tree.levels_.back()[0];
  return tree;
}

}  // namespace revelio::crypto

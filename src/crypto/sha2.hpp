// SHA-2 family (SHA-256, SHA-384, SHA-512), implemented from FIPS 180-4.
//
// SHA-256 is the workhorse: dm-verity block hashing, measurement extension,
// HMAC/KDF substrates. SHA-384 mirrors AMD's use of SHA-384 for SEV-SNP
// launch digests and VCEK signatures (ECDSA P-384/SHA-384).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace revelio::crypto {

using Digest32 = FixedBytes<32>;
using Digest48 = FixedBytes<48>;
using Digest64 = FixedBytes<64>;

/// Streaming SHA-256.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = Digest32;

  Sha256();
  void update(ByteView data);
  Digest32 finish();

 private:
  void compress(const std::uint8_t* block);

  std::uint32_t h_[8];
  std::uint8_t buf_[64];
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// 8-way multi-buffer SHA-256: eight INDEPENDENT messages hashed in
/// lockstep, one 32-bit lane per message. On AVX2 hosts all eight
/// compressions run in one vectorized pass (~4-6x scalar throughput); the
/// fallback runs the dispatched single-stream core per lane, so digests are
/// identical everywhere, including under REVELIO_NO_ISA=1.
///
/// Lockstep streaming: every update() advances all eight lanes by the SAME
/// length (per-lane data, shared schedule). That is exactly the shape of
/// the bulk batch workloads — Merkle leaf/inner hashing (equal-size
/// prefixed blocks) and per-session transcript digests — and what lets one
/// message-schedule walk serve eight digests. For fewer than eight real
/// messages, repeat a view; surplus digests are free to ignore.
class Sha256x8 {
 public:
  static constexpr std::size_t kLanes = 8;

  Sha256x8();
  /// Appends views[l] to lane l. All eight views must be the same length.
  void update(const ByteView views[kLanes]);
  /// Pads (identically, since lanes saw equal lengths) and writes all
  /// eight digests.
  void finish(Digest32 out[kLanes]);

 private:
  void compress(const std::uint8_t* const blocks[kLanes], std::size_t n);

  std::uint32_t h_[kLanes][8];
  std::uint8_t buf_[kLanes][64];
  std::size_t buf_len_ = 0;       // shared: lanes advance in lockstep
  std::uint64_t total_len_ = 0;   // shared
};

/// One-shot 8-way SHA-256 over eight equal-length messages.
void sha256_x8(const ByteView views[Sha256x8::kLanes],
               Digest32 out[Sha256x8::kLanes]);

/// Streaming SHA-512 core shared by SHA-512 and SHA-384.
class Sha512Core {
 public:
  static constexpr std::size_t kBlockSize = 128;

  explicit Sha512Core(bool is384);
  void update(ByteView data);
  /// Writes the full 64-byte state; callers truncate for SHA-384.
  Digest64 finish_raw();

 private:
  void compress(const std::uint8_t* block);

  std::uint64_t h_[8];
  std::uint8_t buf_[128];
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Streaming SHA-384 (FIPS 180-4 §5.3.4 IV, truncated SHA-512).
class Sha384 {
 public:
  static constexpr std::size_t kDigestSize = 48;
  static constexpr std::size_t kBlockSize = 128;
  using Digest = Digest48;

  Sha384() : core_(true) {}
  void update(ByteView data) { core_.update(data); }
  Digest48 finish() {
    return Digest48::from(core_.finish_raw().view().subspan(0, 48));
  }

 private:
  Sha512Core core_;
};

/// Streaming SHA-512.
class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  static constexpr std::size_t kBlockSize = 128;
  using Digest = Digest64;

  Sha512() : core_(false) {}
  void update(ByteView data) { core_.update(data); }
  Digest64 finish() { return core_.finish_raw(); }

 private:
  Sha512Core core_;
};

/// One-shot helpers.
Digest32 sha256(ByteView data);
Digest48 sha384(ByteView data);
Digest64 sha512(ByteView data);

}  // namespace revelio::crypto

// Key derivation functions.
//
//  - HKDF (RFC 5869): TLS-lite session keys, sealing-key diversification.
//  - PBKDF2 (RFC 8018): dm-crypt key-slot derivation; the paper configures
//    cryptsetup with pbkdf2 at 1000 iterations, which we mirror.
#pragma once

#include "common/bytes.hpp"

namespace revelio::crypto {

/// HKDF-Extract + HKDF-Expand with HMAC-SHA256.
Bytes hkdf_sha256(ByteView ikm, ByteView salt, ByteView info,
                  std::size_t length);

/// PBKDF2 with HMAC-SHA256.
Bytes pbkdf2_sha256(ByteView password, ByteView salt, std::uint32_t iterations,
                    std::size_t length);

}  // namespace revelio::crypto

// ECIES: public-key sealing of small payloads.
//
// Ephemeral ECDH against the recipient's public key, HKDF to an AEAD key,
// encrypt-then-MAC. Used by the Revelio leader to wrap the shared TLS
// private key for an attested peer (Fig 4 of the paper).
#pragma once

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/drbg.hpp"
#include "crypto/ecdsa.hpp"

namespace revelio::crypto {

/// Encrypts `plaintext` so only the holder of the private key matching
/// `recipient_pub` (SEC1-encoded point on `curve`) can read it.
/// Output: eph_pub_len(4) | eph_pub | aead blob.
Result<Bytes> ecies_seal(const Curve& curve, ByteView recipient_pub,
                         ByteView plaintext, HmacDrbg& drbg);

/// Decrypts an ecies_seal output with the recipient's private scalar.
Result<Bytes> ecies_open(const Curve& curve, const U384& recipient_priv,
                         ByteView sealed);

}  // namespace revelio::crypto

// Runtime CPU feature detection for the crypto hot loops.
//
// The bulk-data targets (dm-verity leaf hashing, dm-crypt AES-XTS) dispatch
// once, at first use, between a portable scalar core and an ISA-accelerated
// one (SHA-NI / AES-NI on x86-64). Both cores produce identical bytes — the
// KAT suites run against whichever core the host selects, and the scalar
// core is always compiled so non-x86 hosts and `REVELIO_NO_ISA=1` runs stay
// covered.
#pragma once

namespace revelio::crypto {

/// True when the CPU offers the SHA-NI SHA-256 extensions (and the build
/// targets x86-64). Honours the REVELIO_NO_ISA=1 escape hatch.
bool cpu_has_sha_ni();

/// True when the CPU offers AES-NI. Honours REVELIO_NO_ISA=1.
bool cpu_has_aes_ni();

/// True when the CPU offers AVX2 (the 8-way multi-buffer SHA-256 core).
/// Honours REVELIO_NO_ISA=1.
bool cpu_has_avx2();

}  // namespace revelio::crypto

// ECDSA signatures and ECDH key agreement over the library's curves.
//
// Signing uses a deterministic nonce in the spirit of RFC 6979 (HMAC-DRBG
// keyed with the private key and message hash), so identical inputs yield
// identical signatures — which keeps the whole simulation reproducible and
// removes nonce-reuse risk.
#pragma once

#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/drbg.hpp"
#include "crypto/ec.hpp"

namespace revelio::crypto {

struct EcdsaSignature {
  U384 r;
  U384 s;

  /// Fixed-width r || s encoding using the curve's coordinate length.
  Bytes encode(const Curve& curve) const;
  static Result<EcdsaSignature> decode(const Curve& curve, ByteView bytes);
};

struct EcKeyPair {
  U384 d;              // private scalar in [1, n-1]
  Curve::Point q;      // public point d*G

  Bytes public_encoded(const Curve& curve) const {
    return curve.encode_point(q);
  }
};

/// Generates a key pair from DRBG output (rejection sampling into [1, n-1]).
EcKeyPair ec_generate(const Curve& curve, HmacDrbg& drbg);

/// Derives the scalar z from a message hash: leftmost bits, reduced mod n.
U384 hash_to_scalar(const Curve& curve, ByteView msg_hash);

/// Signs a prehashed message.
EcdsaSignature ecdsa_sign(const Curve& curve, const U384& priv,
                          ByteView msg_hash);

/// Verifies a signature on a prehashed message.
bool ecdsa_verify(const Curve& curve, const Curve::Point& pub,
                  ByteView msg_hash, const EcdsaSignature& sig);

/// One signature of a batch-verification call.
struct EcdsaBatchItem {
  Curve::Point pub;
  Bytes msg_hash;  // prehashed message, same convention as ecdsa_verify
  EcdsaSignature sig;
};

/// Verifies N independent signatures in one pass and returns the verdict
/// for each item, bit-identical to calling ecdsa_verify N times.
///
/// The fast path checks the single random-linear-combination equation
///
///   sum_i a_i * (u1_i * G + u2_i * Q_i - R_i)  ==  O
///
/// over ONE interleaved Strauss–Shamir ladder (multi_scalar_mult_base): the
/// G terms fold into one fixed-base multiplication, equal public keys share
/// one full-width scalar each (the gateway verifies the same VCEK for every
/// session), and each signature adds only a ~128-bit coefficient term. The
/// a_i are derived Fiat–Shamir-style from the whole batch, so an adversary
/// cannot craft signatures whose errors cancel. R_i is reconstructed from r
/// via lift_x_even — sound because ecdsa_sign normalizes to even-y nonce
/// points (the (r, n-s) malleability twin verifies identically).
///
/// Fail closed: if the combined equation does not hold — a forged or merely
/// non-normalized signature anywhere in the batch — every batched item is
/// re-verified individually, which both identifies the offender(s) exactly
/// and accepts valid signatures the fast path cannot represent.
std::vector<bool> ecdsa_verify_batch(const Curve& curve,
                                     const std::vector<EcdsaBatchItem>& items);

/// ECDH: x-coordinate of priv * peer, fixed-width encoded. Callers run the
/// result through a KDF before use.
Result<Bytes> ecdh_shared_secret(const Curve& curve, const U384& priv,
                                 const Curve::Point& peer);

}  // namespace revelio::crypto

// ECDSA signatures and ECDH key agreement over the library's curves.
//
// Signing uses a deterministic nonce in the spirit of RFC 6979 (HMAC-DRBG
// keyed with the private key and message hash), so identical inputs yield
// identical signatures — which keeps the whole simulation reproducible and
// removes nonce-reuse risk.
#pragma once

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/drbg.hpp"
#include "crypto/ec.hpp"

namespace revelio::crypto {

struct EcdsaSignature {
  U384 r;
  U384 s;

  /// Fixed-width r || s encoding using the curve's coordinate length.
  Bytes encode(const Curve& curve) const;
  static Result<EcdsaSignature> decode(const Curve& curve, ByteView bytes);
};

struct EcKeyPair {
  U384 d;              // private scalar in [1, n-1]
  Curve::Point q;      // public point d*G

  Bytes public_encoded(const Curve& curve) const {
    return curve.encode_point(q);
  }
};

/// Generates a key pair from DRBG output (rejection sampling into [1, n-1]).
EcKeyPair ec_generate(const Curve& curve, HmacDrbg& drbg);

/// Derives the scalar z from a message hash: leftmost bits, reduced mod n.
U384 hash_to_scalar(const Curve& curve, ByteView msg_hash);

/// Signs a prehashed message.
EcdsaSignature ecdsa_sign(const Curve& curve, const U384& priv,
                          ByteView msg_hash);

/// Verifies a signature on a prehashed message.
bool ecdsa_verify(const Curve& curve, const Curve::Point& pub,
                  ByteView msg_hash, const EcdsaSignature& sig);

/// ECDH: x-coordinate of priv * peer, fixed-width encoded. Callers run the
/// result through a KDF before use.
Result<Bytes> ecdh_shared_secret(const Curve& curve, const U384& priv,
                                 const Curve::Point& peer);

}  // namespace revelio::crypto

// AES block cipher (FIPS 197), key sizes 128/192/256.
//
// Two cores behind one runtime dispatch: a table-free scalar implementation
// (auditable, always compiled, the only path on non-x86 hosts or with
// REVELIO_NO_ISA=1) and an AES-NI path on CPUs that have it — the dm-crypt
// sector loop is the bulk consumer and is ISA-bound in practice. The key
// schedule — including the equivalent-inverse-cipher decryption keys the
// AES-NI path needs — is expanded exactly once, in the constructor, so
// per-block work is rounds only; DmCrypt holds one Aes per XTS half-key for
// the device's lifetime.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace revelio::crypto {

class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Key must be 16, 24 or 32 bytes. Expands both the encryption and the
  /// (equivalent inverse cipher) decryption schedules up front.
  explicit Aes(ByteView key);

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

 private:
  std::uint32_t round_keys_[60];
  // Byte-serialized schedules consumed by the AES-NI kernels: the forward
  // keys verbatim, and the decryption keys already passed through
  // InvMixColumns (AESDEC's equivalent-inverse-cipher convention).
  alignas(16) std::uint8_t enc_rk_bytes_[16 * 15];
  alignas(16) std::uint8_t dec_rk_bytes_[16 * 15];
  int rounds_;
};

}  // namespace revelio::crypto

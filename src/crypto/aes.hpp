// AES block cipher (FIPS 197), key sizes 128/192/256.
//
// Straightforward table-free S-box implementation: the simulation values
// auditability over raw throughput, and the measured shapes (dm-crypt
// overhead ratios) survive a slower block cipher.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace revelio::crypto {

class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Key must be 16, 24 or 32 bytes.
  explicit Aes(ByteView key);

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

 private:
  std::uint32_t round_keys_[60];
  int rounds_;
};

}  // namespace revelio::crypto

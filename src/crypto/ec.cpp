#include "crypto/ec.hpp"

#include <array>
#include <cassert>

namespace revelio::crypto {

namespace {

/// wNAF window width for variable-point multiplication (16-entry tables).
constexpr unsigned kWnafWidth = 5;

/// Per-curve bound on cached per-public-key verification tables. Each entry
/// holds 32 affine points (~3 KiB); 64 entries cover a fleet's worth of
/// ARK/ASK/VCEK and TLS leaf keys while bounding memory at ~200 KiB.
constexpr std::size_t kVerifyCacheCapacity = 64;

}  // namespace

const CurveParams& p256_params() {
  static const CurveParams params{
      "P-256",
      U384::from_hex("ffffffff00000001000000000000000000000000ffffffffffffff"
                     "ffffffffff"),
      U384::from_hex("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c"
                     "3e27d2604b"),
      U384::from_hex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a139"
                     "45d898c296"),
      U384::from_hex("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb640"
                     "6837bf51f5"),
      U384::from_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9ca"
                     "c2fc632551"),
      32};
  return params;
}

const CurveParams& p384_params() {
  static const CurveParams params{
      "P-384",
      U384::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffff"
                     "ffffffffffeffffffff0000000000000000ffffffff"),
      U384::from_hex("b3312fa7e23ee7e4988e056be3f82d19181d9c6efe8141120314"
                     "088f5013875ac656398d8a2ed19d2a85c8edd3ec2aef"),
      U384::from_hex("aa87ca22be8b05378eb1c71ef320ad746e1d3b628ba79b9859f7"
                     "41e082542a385502f25dbf55296c3a545e3872760ab7"),
      U384::from_hex("3617de4a96262c6f5d9e98bf9292dc29f8f41dbd289a147ce9da"
                     "3113b5f0b8c00a60b1ce1d7e819d7a431d7c90ea0e5f"),
      U384::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffc763"
                     "4d81f4372ddf581a0db248b0a77aecec196accc52973"),
      48};
  return params;
}

Bytes Curve::Point::encode(std::size_t coord_len) const {
  Bytes out;
  out.push_back(0x04);
  append(out, x.to_bytes_be(coord_len));
  append(out, y.to_bytes_be(coord_len));
  return out;
}

Curve::Curve(const CurveParams& params)
    : params_(params), fp_(params.p), fn_(params.n) {
  // a = -3 mod p.
  U384 a;
  sub_with_borrow(a, params_.p, U384::from_u64(3));
  a_mont_ = fp_.to_mont(a);
  b_mont_ = fp_.to_mont(params_.b);

  // (p + 1) / 4: the sqrt exponent for p = 3 mod 4. p + 1 never carries out
  // of 384 bits (neither prime is 2^384 - 1).
  U384 p_plus_1;
  add_with_carry(p_plus_1, params_.p, U384::from_u64(1));
  for (std::size_t i = 0; i + 1 < U384::kLimbs; ++i) {
    sqrt_exp_.limbs[i] =
        (p_plus_1.limbs[i] >> 2) | (p_plus_1.limbs[i + 1] << 62);
  }
  sqrt_exp_.limbs[U384::kLimbs - 1] = p_plus_1.limbs[U384::kLimbs - 1] >> 2;

  order_bits_ = static_cast<unsigned>(params_.byte_length * 8);
  half_bits_ = order_bits_ / 2;  // 128 (P-256) / 192 (P-384): whole limbs
  const ecp::Aff g{fp_.to_mont(params_.gx), fp_.to_mont(params_.gy), false};
  fixed_base_ = std::make_unique<ecp::FixedBaseTable>(fp_, g, order_bits_);
  verify_cache_ =
      std::make_unique<ecp::VerifyTableCache>(kVerifyCacheCapacity);
}

bool Curve::on_curve(const Point& pt) const {
  if (pt.infinity) return false;
  if (pt.x.cmp(params_.p) >= 0 || pt.y.cmp(params_.p) >= 0) return false;
  const U384 x = fp_.to_mont(pt.x);
  const U384 y = fp_.to_mont(pt.y);
  const U384 y2 = fp_.mul(y, y);
  const U384 x3 = fp_.mul(fp_.mul(x, x), x);
  const U384 ax = fp_.mul(a_mont_, x);
  const U384 rhs = fp_.add(fp_.add(x3, ax), b_mont_);
  return y2 == rhs;
}

U384 Curve::reduce_scalar(const U384& k) const {
  // Cofactor is 1 on both curves, so k * P == (k mod n) * P for every
  // curve point; reducing keeps wNAF headroom assumptions valid too.
  if (k.cmp(params_.n) < 0) return k;
  return fn_.reduce(k);
}

Curve::Point Curve::to_affine(const ecp::Jac& p) const {
  if (p.is_inf()) return Point::at_infinity();
  const U384 zinv = fp_.inv(p.z);
  const U384 zinv2 = fp_.mul(zinv, zinv);
  const U384 zinv3 = fp_.mul(zinv2, zinv);
  return Point{fp_.from_mont(fp_.mul(p.x, zinv2)),
               fp_.from_mont(fp_.mul(p.y, zinv3)), false};
}

Curve::Point Curve::add(const Point& a, const Point& b) const {
  if (a.infinity) return b;
  if (b.infinity) return a;
  const ecp::Jac ja{fp_.to_mont(a.x), fp_.to_mont(a.y), fp_.one()};
  const ecp::Jac jb{fp_.to_mont(b.x), fp_.to_mont(b.y), fp_.one()};
  return to_affine(ecp::jac_add(fp_, ja, jb));
}

namespace {

/// Applies one signed wNAF digit against a Jacobian odd-multiples table.
ecp::Jac apply_digit_jac(const MontCtx& fp, const ecp::Jac& acc, int digit,
                         const std::array<ecp::Jac, 16>& table) {
  if (digit > 0) return ecp::jac_add(fp, acc, table[digit >> 1]);
  ecp::Jac neg = table[(-digit) >> 1];
  neg.y = fp.sub(U384::zero(), neg.y);
  return ecp::jac_add(fp, acc, neg);
}

/// Applies one signed wNAF digit against an affine odd-multiples table.
ecp::Jac apply_digit_aff(const MontCtx& fp, const ecp::Jac& acc, int digit,
                         const std::vector<ecp::Aff>& table) {
  if (digit > 0) return ecp::jac_add_affine(fp, acc, table[digit >> 1]);
  ecp::Aff neg = table[(-digit) >> 1];
  neg.y = fp.sub(U384::zero(), neg.y);
  return ecp::jac_add_affine(fp, acc, neg);
}

}  // namespace

Curve::Point Curve::scalar_mult(const U384& k, const Point& pt) const {
  if (pt.infinity) return Point::at_infinity();
  const U384 kr = reduce_scalar(k);
  if (kr.is_zero()) return Point::at_infinity();

  // Odd multiples 1P, 3P, ..., 31P, kept Jacobian: for a one-shot
  // multiplication the batch normalization would cost more (one field
  // inversion) than mixed additions save.
  const ecp::Jac base{fp_.to_mont(pt.x), fp_.to_mont(pt.y), fp_.one()};
  std::array<ecp::Jac, 16> table;
  table[0] = base;
  const ecp::Jac twice = ecp::jac_double(fp_, base);
  for (std::size_t i = 1; i < table.size(); ++i) {
    table[i] = ecp::jac_add(fp_, table[i - 1], twice);
  }

  const auto digits = ecp::wnaf_recode(kr, kWnafWidth);
  ecp::Jac acc = ecp::Jac::inf();
  for (std::size_t i = digits.size(); i-- > 0;) {
    acc = ecp::jac_double(fp_, acc);
    if (digits[i] != 0) acc = apply_digit_jac(fp_, acc, digits[i], table);
  }
  return to_affine(acc);
}

Curve::Point Curve::scalar_mult_base(const U384& k) const {
  const U384 kr = reduce_scalar(k);
  if (kr.is_zero()) return Point::at_infinity();
  return to_affine(fixed_base_->mul(fp_, kr));
}

std::shared_ptr<ecp::VerifyTables> Curve::build_verify_tables(
    const Point& q) const {
  auto tables = std::make_shared<ecp::VerifyTables>();
  tables->half_bits = half_bits_;
  tables->width = kWnafWidth;
  const ecp::Jac base{fp_.to_mont(q.x), fp_.to_mont(q.y), fp_.one()};
  tables->low = ecp::odd_multiples(fp_, base, kWnafWidth);
  ecp::Jac shifted = base;
  for (unsigned i = 0; i < half_bits_; ++i) {
    shifted = ecp::jac_double(fp_, shifted);
  }
  tables->high = ecp::odd_multiples(fp_, shifted, kWnafWidth);
  return tables;
}

std::shared_ptr<const ecp::VerifyTables> Curve::tables_for(
    const Point& q) const {
  const Bytes key = encode_point(q);
  // Pinned well-known bases first: shared-lock read, no LRU splice, no
  // contention with other verification threads.
  if (auto pinned = ecp::PinnedTableRegistry::instance().get(key)) {
    return pinned;
  }
  if (auto cached = verify_cache_->get(key)) return cached;

  auto tables = build_verify_tables(q);
  verify_cache_->put(key, tables);
  return tables;
}

void Curve::pin_verify_tables(const Point& q) const {
  if (q.infinity) return;
  const Bytes key = encode_point(q);
  auto& registry = ecp::PinnedTableRegistry::instance();
  if (registry.get(key) != nullptr) return;  // already pinned
  registry.pin(key, build_verify_tables(q));
}

Curve::Point Curve::double_scalar_mult_base(const U384& u1, const U384& u2,
                                            const Point& q) const {
  const U384 a = reduce_scalar(u1);
  if (q.infinity) return scalar_mult_base(a);
  const U384 b = reduce_scalar(u2);
  if (b.is_zero()) return scalar_mult_base(a);

  const auto tables = tables_for(q);

  // Split b at half_bits (a whole number of limbs): b = hi * 2^half + lo.
  const std::size_t split_limb = half_bits_ / 64;
  U384 lo = b;
  U384 hi;
  for (std::size_t i = split_limb; i < U384::kLimbs; ++i) {
    hi.limbs[i - split_limb] = b.limbs[i];
    lo.limbs[i] = 0;
  }

  const auto digits_lo = ecp::wnaf_recode(lo, kWnafWidth);
  const auto digits_hi = ecp::wnaf_recode(hi, kWnafWidth);

  // One shared doubling chain of half_bits steps covers both halves of
  // u2 * Q; the u1 * G term needs no doublings at all (fixed-base table)
  // and is folded in at the end.
  ecp::Jac acc = ecp::Jac::inf();
  const std::size_t steps = std::max(digits_lo.size(), digits_hi.size());
  for (std::size_t i = steps; i-- > 0;) {
    acc = ecp::jac_double(fp_, acc);
    if (i < digits_lo.size() && digits_lo[i] != 0) {
      acc = apply_digit_aff(fp_, acc, digits_lo[i], tables->low);
    }
    if (i < digits_hi.size() && digits_hi[i] != 0) {
      acc = apply_digit_aff(fp_, acc, digits_hi[i], tables->high);
    }
  }
  if (!a.is_zero()) {
    acc = ecp::jac_add(fp_, acc, fixed_base_->mul(fp_, a));
  }
  return to_affine(acc);
}

Curve::Point Curve::multi_scalar_mult_base(
    const U384& base_scalar, const std::vector<MsmTerm>& full_terms,
    const std::vector<MsmTerm>& small_terms) const {
  const U384 a = reduce_scalar(base_scalar);

  // Full-width terms ride the same split-and-cache machinery as
  // double_scalar_mult_base: two half-length wNAF digit strings against the
  // per-key low/high tables.
  struct FullPlan {
    std::shared_ptr<const ecp::VerifyTables> tables;
    std::vector<std::int8_t> lo;
    std::vector<std::int8_t> hi;
  };
  std::vector<FullPlan> fulls;
  fulls.reserve(full_terms.size());
  const std::size_t split_limb = half_bits_ / 64;
  for (const MsmTerm& term : full_terms) {
    if (term.point.infinity) continue;
    const U384 k = reduce_scalar(term.scalar);
    if (k.is_zero()) continue;
    FullPlan plan;
    plan.tables = tables_for(term.point);
    U384 lo = k;
    U384 hi;
    for (std::size_t i = split_limb; i < U384::kLimbs; ++i) {
      hi.limbs[i - split_limb] = k.limbs[i];
      lo.limbs[i] = 0;
    }
    plan.lo = ecp::wnaf_recode(lo, kWnafWidth);
    plan.hi = ecp::wnaf_recode(hi, kWnafWidth);
    fulls.push_back(std::move(plan));
  }

  // Small terms (batch coefficients): one-shot width-4 tables, ALL
  // normalized with a single shared inversion.
  constexpr unsigned kSmallWidth = 4;
  std::vector<ecp::Jac> small_bases;
  std::vector<std::vector<std::int8_t>> small_digits;
  for (const MsmTerm& term : small_terms) {
    if (term.point.infinity) continue;
    const U384 k = reduce_scalar(term.scalar);
    if (k.is_zero()) continue;
    small_bases.push_back(ecp::Jac{fp_.to_mont(term.point.x),
                                   fp_.to_mont(term.point.y), fp_.one()});
    small_digits.push_back(ecp::wnaf_recode(k, kSmallWidth));
  }
  const std::vector<std::vector<ecp::Aff>> small_tables =
      ecp::odd_multiples_many(fp_, small_bases, kSmallWidth);

  std::size_t steps = 0;
  for (const FullPlan& plan : fulls) {
    steps = std::max({steps, plan.lo.size(), plan.hi.size()});
  }
  for (const auto& digits : small_digits) {
    steps = std::max(steps, digits.size());
  }

  // One doubling chain covers every term; each term contributes only its
  // nonzero digits as mixed additions.
  ecp::Jac acc = ecp::Jac::inf();
  for (std::size_t i = steps; i-- > 0;) {
    acc = ecp::jac_double(fp_, acc);
    for (const FullPlan& plan : fulls) {
      if (i < plan.lo.size() && plan.lo[i] != 0) {
        acc = apply_digit_aff(fp_, acc, plan.lo[i], plan.tables->low);
      }
      if (i < plan.hi.size() && plan.hi[i] != 0) {
        acc = apply_digit_aff(fp_, acc, plan.hi[i], plan.tables->high);
      }
    }
    for (std::size_t t = 0; t < small_digits.size(); ++t) {
      if (i < small_digits[t].size() && small_digits[t][i] != 0) {
        acc = apply_digit_aff(fp_, acc, small_digits[t][i], small_tables[t]);
      }
    }
  }
  if (!a.is_zero()) {
    acc = ecp::jac_add(fp_, acc, fixed_base_->mul(fp_, a));
  }
  return to_affine(acc);
}

std::optional<Curve::Point> Curve::lift_x_even(const U384& x) const {
  if (x.cmp(params_.p) >= 0) return std::nullopt;
  const U384 xm = fp_.to_mont(x);
  const U384 x3 = fp_.mul(fp_.mul(xm, xm), xm);
  const U384 rhs = fp_.add(fp_.add(x3, fp_.mul(a_mont_, xm)), b_mont_);
  const U384 y = fp_.pow(rhs, sqrt_exp_);
  // p = 3 mod 4: the pow is a square root iff rhs is a quadratic residue.
  if (fp_.mul(y, y) != rhs) return std::nullopt;
  U384 y_plain = fp_.from_mont(y);
  if (y_plain.bit(0)) {
    sub_with_borrow(y_plain, params_.p, y_plain);
  }
  return Point{x, y_plain, false};
}

Curve::Point Curve::scalar_mult_naive(const U384& k, const Point& pt) const {
  if (pt.infinity || k.is_zero()) return Point::at_infinity();
  const ecp::Jac base{fp_.to_mont(pt.x), fp_.to_mont(pt.y), fp_.one()};
  ecp::Jac acc = ecp::Jac::inf();
  for (std::size_t i = k.bit_length(); i-- > 0;) {
    acc = ecp::jac_double(fp_, acc);
    if (k.bit(i)) acc = ecp::jac_add(fp_, acc, base);
  }
  return to_affine(acc);
}

Result<Curve::Point> Curve::decode_point(ByteView encoded) const {
  const std::size_t len = params_.byte_length;
  if (encoded.size() != 1 + 2 * len || encoded[0] != 0x04) {
    return Error::make("ec.bad_point_encoding",
                       "expected 0x04 || X || Y of " +
                           std::to_string(1 + 2 * len) + " bytes");
  }
  const Point pt{U384::from_bytes_be(encoded.subspan(1, len)),
                 U384::from_bytes_be(encoded.subspan(1 + len, len)), false};
  if (pt.x.cmp(params_.p) >= 0 || pt.y.cmp(params_.p) >= 0) {
    return Error::make("ec.coordinate_out_of_range", params_.name);
  }
  if (!on_curve(pt)) {
    return Error::make("ec.point_not_on_curve", params_.name);
  }
  return pt;
}

const Curve& p256() {
  static const Curve curve(p256_params());
  return curve;
}

const Curve& p384() {
  static const Curve curve(p384_params());
  return curve;
}

}  // namespace revelio::crypto

#include "crypto/ec.hpp"

#include <cassert>

namespace revelio::crypto {

const CurveParams& p256_params() {
  static const CurveParams params{
      "P-256",
      U384::from_hex("ffffffff00000001000000000000000000000000ffffffffffffff"
                     "ffffffffff"),
      U384::from_hex("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c"
                     "3e27d2604b"),
      U384::from_hex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a139"
                     "45d898c296"),
      U384::from_hex("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb640"
                     "6837bf51f5"),
      U384::from_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9ca"
                     "c2fc632551"),
      32};
  return params;
}

const CurveParams& p384_params() {
  static const CurveParams params{
      "P-384",
      U384::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffff"
                     "ffffffffffeffffffff0000000000000000ffffffff"),
      U384::from_hex("b3312fa7e23ee7e4988e056be3f82d19181d9c6efe8141120314"
                     "088f5013875ac656398d8a2ed19d2a85c8edd3ec2aef"),
      U384::from_hex("aa87ca22be8b05378eb1c71ef320ad746e1d3b628ba79b9859f7"
                     "41e082542a385502f25dbf55296c3a545e3872760ab7"),
      U384::from_hex("3617de4a96262c6f5d9e98bf9292dc29f8f41dbd289a147ce9da"
                     "3113b5f0b8c00a60b1ce1d7e819d7a431d7c90ea0e5f"),
      U384::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffc763"
                     "4d81f4372ddf581a0db248b0a77aecec196accc52973"),
      48};
  return params;
}

Bytes Curve::Point::encode(std::size_t coord_len) const {
  Bytes out;
  out.push_back(0x04);
  append(out, x.to_bytes_be(coord_len));
  append(out, y.to_bytes_be(coord_len));
  return out;
}

namespace {

/// Jacobian coordinates (X, Y, Z) with x = X/Z^2, y = Y/Z^3; all coordinates
/// in the Montgomery domain. Z == 0 encodes the point at infinity.
struct Jacobian {
  U384 x;
  U384 y;
  U384 z;

  bool is_infinity() const { return z.is_zero(); }
  static Jacobian infinity() { return Jacobian{}; }
};

}  // namespace

Curve::Curve(const CurveParams& params)
    : params_(params), fp_(params.p), fn_(params.n) {
  // a = -3 mod p.
  U384 a;
  sub_with_borrow(a, params_.p, U384::from_u64(3));
  a_mont_ = fp_.to_mont(a);
  b_mont_ = fp_.to_mont(params_.b);
}

bool Curve::on_curve(const Point& pt) const {
  if (pt.infinity) return false;
  if (pt.x.cmp(params_.p) >= 0 || pt.y.cmp(params_.p) >= 0) return false;
  const U384 x = fp_.to_mont(pt.x);
  const U384 y = fp_.to_mont(pt.y);
  const U384 y2 = fp_.mul(y, y);
  const U384 x3 = fp_.mul(fp_.mul(x, x), x);
  const U384 ax = fp_.mul(a_mont_, x);
  const U384 rhs = fp_.add(fp_.add(x3, ax), b_mont_);
  return y2 == rhs;
}

namespace {

/// Doubling with a = -3 (dbl-2001-b style).
Jacobian jacobian_double(const MontCtx& fp, const Jacobian& p) {
  if (p.is_infinity()) return p;
  if (p.y.is_zero()) return Jacobian::infinity();

  const U384 delta = fp.mul(p.z, p.z);
  const U384 gamma = fp.mul(p.y, p.y);
  const U384 beta = fp.mul(p.x, gamma);
  // alpha = 3 (x - delta)(x + delta)
  const U384 diff = fp.sub(p.x, delta);
  const U384 sum = fp.add(p.x, delta);
  U384 alpha = fp.mul(diff, sum);
  alpha = fp.add(fp.add(alpha, alpha), alpha);

  Jacobian r;
  // X3 = alpha^2 - 8 beta
  const U384 beta2 = fp.add(beta, beta);
  const U384 beta4 = fp.add(beta2, beta2);
  const U384 beta8 = fp.add(beta4, beta4);
  r.x = fp.sub(fp.mul(alpha, alpha), beta8);
  // Z3 = (y + z)^2 - gamma - delta
  const U384 yz = fp.add(p.y, p.z);
  r.z = fp.sub(fp.sub(fp.mul(yz, yz), gamma), delta);
  // Y3 = alpha (4 beta - X3) - 8 gamma^2
  const U384 gamma2 = fp.mul(gamma, gamma);
  const U384 g2 = fp.add(gamma2, gamma2);
  const U384 g4 = fp.add(g2, g2);
  const U384 g8 = fp.add(g4, g4);
  r.y = fp.sub(fp.mul(alpha, fp.sub(beta4, r.x)), g8);
  return r;
}

/// General Jacobian addition (add-2007-bl without the Z caching tricks).
Jacobian jacobian_add(const MontCtx& fp, const Jacobian& a,
                             const Jacobian& b) {
  if (a.is_infinity()) return b;
  if (b.is_infinity()) return a;

  const U384 z1z1 = fp.mul(a.z, a.z);
  const U384 z2z2 = fp.mul(b.z, b.z);
  const U384 u1 = fp.mul(a.x, z2z2);
  const U384 u2 = fp.mul(b.x, z1z1);
  const U384 s1 = fp.mul(fp.mul(a.y, b.z), z2z2);
  const U384 s2 = fp.mul(fp.mul(b.y, a.z), z1z1);

  const U384 h = fp.sub(u2, u1);
  const U384 r = fp.sub(s2, s1);
  if (h.is_zero()) {
    if (r.is_zero()) return jacobian_double(fp, a);
    return Jacobian::infinity();
  }

  const U384 hh = fp.mul(h, h);
  const U384 hhh = fp.mul(h, hh);
  const U384 v = fp.mul(u1, hh);

  Jacobian out;
  // X3 = r^2 - HHH - 2V
  out.x = fp.sub(fp.sub(fp.mul(r, r), hhh), fp.add(v, v));
  // Y3 = r (V - X3) - S1 * HHH
  out.y = fp.sub(fp.mul(r, fp.sub(v, out.x)), fp.mul(s1, hhh));
  // Z3 = Z1 Z2 H
  out.z = fp.mul(fp.mul(a.z, b.z), h);
  return out;
}

}  // namespace

Curve::Point Curve::add(const Point& a, const Point& b) const {
  if (a.infinity) return b;
  if (b.infinity) return a;
  Jacobian ja{fp_.to_mont(a.x), fp_.to_mont(a.y), fp_.one()};
  Jacobian jb{fp_.to_mont(b.x), fp_.to_mont(b.y), fp_.one()};
  const Jacobian sum = jacobian_add(fp_, ja, jb);
  if (sum.is_infinity()) return Point::at_infinity();
  const U384 zinv = fp_.inv(sum.z);
  const U384 zinv2 = fp_.mul(zinv, zinv);
  const U384 zinv3 = fp_.mul(zinv2, zinv);
  return Point{fp_.from_mont(fp_.mul(sum.x, zinv2)),
               fp_.from_mont(fp_.mul(sum.y, zinv3)), false};
}

Curve::Point Curve::scalar_mult(const U384& k, const Point& pt) const {
  if (pt.infinity || k.is_zero()) return Point::at_infinity();
  const Jacobian base{fp_.to_mont(pt.x), fp_.to_mont(pt.y), fp_.one()};
  Jacobian acc = Jacobian::infinity();
  for (std::size_t i = k.bit_length(); i-- > 0;) {
    acc = jacobian_double(fp_, acc);
    if (k.bit(i)) acc = jacobian_add(fp_, acc, base);
  }
  if (acc.is_infinity()) return Point::at_infinity();
  const U384 zinv = fp_.inv(acc.z);
  const U384 zinv2 = fp_.mul(zinv, zinv);
  const U384 zinv3 = fp_.mul(zinv2, zinv);
  return Point{fp_.from_mont(fp_.mul(acc.x, zinv2)),
               fp_.from_mont(fp_.mul(acc.y, zinv3)), false};
}

Curve::Point Curve::scalar_mult_base(const U384& k) const {
  return scalar_mult(k, generator());
}

Curve::Point Curve::decode_point(ByteView encoded) const {
  const std::size_t len = params_.byte_length;
  if (encoded.size() != 1 + 2 * len || encoded[0] != 0x04) {
    return Point::at_infinity();
  }
  Point pt{U384::from_bytes_be(encoded.subspan(1, len)),
           U384::from_bytes_be(encoded.subspan(1 + len, len)), false};
  if (!on_curve(pt)) return Point::at_infinity();
  return pt;
}

const Curve& p256() {
  static const Curve curve(p256_params());
  return curve;
}

const Curve& p384() {
  static const Curve curve(p384_params());
  return curve;
}

}  // namespace revelio::crypto

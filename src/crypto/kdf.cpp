#include "crypto/kdf.hpp"

#include "crypto/hmac.hpp"

namespace revelio::crypto {

Bytes hkdf_sha256(ByteView ikm, ByteView salt, ByteView info,
                  std::size_t length) {
  // Extract.
  const Digest32 prk = hmac_sha256(salt, ikm);
  // Expand.
  Bytes okm;
  okm.reserve(length);
  Bytes t;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    HmacSha256 mac(prk.view());
    mac.update(t);
    mac.update(info);
    mac.update(ByteView(&counter, 1));
    const Digest32 block = mac.finish();
    t = block.bytes();
    const std::size_t take = std::min<std::size_t>(32, length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + take);
    ++counter;
  }
  return okm;
}

Bytes pbkdf2_sha256(ByteView password, ByteView salt, std::uint32_t iterations,
                    std::size_t length) {
  Bytes okm;
  okm.reserve(length);
  std::uint32_t block_index = 1;
  while (okm.size() < length) {
    // U1 = HMAC(P, S || INT(i))
    HmacSha256 mac(password);
    mac.update(salt);
    Bytes ctr;
    append_u32be(ctr, block_index);
    mac.update(ctr);
    Digest32 u = mac.finish();
    Digest32 acc = u;
    for (std::uint32_t it = 1; it < iterations; ++it) {
      u = hmac_sha256(password, u.view());
      for (std::size_t i = 0; i < 32; ++i) acc[i] ^= u[i];
    }
    const std::size_t take = std::min<std::size_t>(32, length - okm.size());
    okm.insert(okm.end(), acc.begin(), acc.begin() + take);
    ++block_index;
  }
  return okm;
}

}  // namespace revelio::crypto

#include "crypto/bigint.hpp"

#include <cassert>

#include "common/hex.hpp"

namespace revelio::crypto {

using uint128 = unsigned __int128;

U384 U384::from_bytes_be(ByteView bytes) {
  assert(bytes.size() <= 48);
  U384 r;
  std::size_t limb = 0;
  std::size_t shift = 0;
  for (std::size_t i = bytes.size(); i-- > 0;) {
    r.limbs[limb] |= static_cast<std::uint64_t>(bytes[i]) << shift;
    shift += 8;
    if (shift == 64) {
      shift = 0;
      ++limb;
    }
  }
  return r;
}

U384 U384::from_hex(std::string_view hex) {
  auto bytes = revelio::from_hex(hex);
  assert(bytes.has_value());
  return from_bytes_be(*bytes);
}

Bytes U384::to_bytes_be(std::size_t length) const {
  Bytes out(length, 0);
  for (std::size_t i = 0; i < length; ++i) {
    const std::size_t byte_index = i;  // from the little end
    if (byte_index >= 48) break;
    const std::uint64_t limb = limbs[byte_index / 8];
    out[length - 1 - i] =
        static_cast<std::uint8_t>(limb >> (8 * (byte_index % 8)));
  }
  return out;
}

std::size_t U384::bit_length() const {
  for (std::size_t i = kLimbs; i-- > 0;) {
    if (limbs[i] != 0) {
      std::size_t bits = 64 * i;
      std::uint64_t v = limbs[i];
      while (v) {
        ++bits;
        v >>= 1;
      }
      return bits;
    }
  }
  return 0;
}

int U384::cmp(const U384& other) const {
  for (std::size_t i = kLimbs; i-- > 0;) {
    if (limbs[i] != other.limbs[i]) {
      return limbs[i] < other.limbs[i] ? -1 : 1;
    }
  }
  return 0;
}

std::uint64_t add_with_carry(U384& r, const U384& a, const U384& b) {
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < U384::kLimbs; ++i) {
    const uint128 sum = static_cast<uint128>(a.limbs[i]) + b.limbs[i] + carry;
    r.limbs[i] = static_cast<std::uint64_t>(sum);
    carry = static_cast<std::uint64_t>(sum >> 64);
  }
  return carry;
}

std::uint64_t sub_with_borrow(U384& r, const U384& a, const U384& b) {
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < U384::kLimbs; ++i) {
    const uint128 diff = static_cast<uint128>(a.limbs[i]) -
                         static_cast<uint128>(b.limbs[i]) - borrow;
    r.limbs[i] = static_cast<std::uint64_t>(diff);
    borrow = static_cast<std::uint64_t>((diff >> 64) & 1);
  }
  return borrow;
}

MontCtx::MontCtx(const U384& modulus) : m_(modulus) {
  assert((m_.limbs[0] & 1) == 1 && "Montgomery modulus must be odd");

  // n0 = -m^-1 mod 2^64 via Newton iteration: x_{k+1} = x_k (2 - m x_k).
  std::uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) {
    inv *= 2 - m_.limbs[0] * inv;
  }
  n0_ = ~inv + 1;  // negate mod 2^64

  // one_ = 2^384 mod m via shift-and-reduce doublings starting from 1;
  // r2_ = 2^768 mod m continues the same chain. No division needed.
  U384 t = U384::from_u64(1);
  auto mod_double = [this](U384& v) {
    U384 doubled;
    const std::uint64_t carry = add_with_carry(doubled, v, v);
    if (carry || doubled.cmp(m_) >= 0) {
      U384 reduced;
      sub_with_borrow(reduced, doubled, m_);
      v = reduced;
    } else {
      v = doubled;
    }
  };
  for (int i = 0; i < 384; ++i) mod_double(t);
  one_ = t;
  for (int i = 0; i < 384; ++i) mod_double(t);
  r2_ = t;
}

U384 MontCtx::mul(const U384& a, const U384& b) const {
  // CIOS Montgomery multiplication with one extra limb of headroom.
  constexpr std::size_t K = U384::kLimbs;
  std::uint64_t t[K + 2] = {};

  for (std::size_t i = 0; i < K; ++i) {
    // t += a * b[i]
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < K; ++j) {
      const uint128 cur =
          static_cast<uint128>(a.limbs[j]) * b.limbs[i] + t[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    uint128 cur = static_cast<uint128>(t[K]) + carry;
    t[K] = static_cast<std::uint64_t>(cur);
    t[K + 1] = static_cast<std::uint64_t>(cur >> 64);

    // Reduce: add mu * m and shift one limb.
    const std::uint64_t mu = t[0] * n0_;
    cur = static_cast<uint128>(mu) * m_.limbs[0] + t[0];
    carry = static_cast<std::uint64_t>(cur >> 64);
    for (std::size_t j = 1; j < K; ++j) {
      cur = static_cast<uint128>(mu) * m_.limbs[j] + t[j] + carry;
      t[j - 1] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    cur = static_cast<uint128>(t[K]) + carry;
    t[K - 1] = static_cast<std::uint64_t>(cur);
    t[K] = t[K + 1] + static_cast<std::uint64_t>(cur >> 64);
  }

  U384 r;
  for (std::size_t i = 0; i < K; ++i) r.limbs[i] = t[i];
  if (t[K] != 0 || r.cmp(m_) >= 0) {
    U384 reduced;
    sub_with_borrow(reduced, r, m_);
    r = reduced;
  }
  return r;
}

U384 MontCtx::add(const U384& a, const U384& b) const {
  U384 r;
  const std::uint64_t carry = add_with_carry(r, a, b);
  if (carry || r.cmp(m_) >= 0) {
    U384 reduced;
    sub_with_borrow(reduced, r, m_);
    return reduced;
  }
  return r;
}

U384 MontCtx::sub(const U384& a, const U384& b) const {
  U384 r;
  const std::uint64_t borrow = sub_with_borrow(r, a, b);
  if (borrow) {
    U384 fixed;
    add_with_carry(fixed, r, m_);
    return fixed;
  }
  return r;
}

U384 MontCtx::pow(const U384& a, const U384& e) const {
  U384 result = one_;
  const std::size_t bits = e.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    result = mul(result, result);
    if (e.bit(i)) result = mul(result, a);
  }
  return result;
}

U384 MontCtx::inv(const U384& a) const {
  // Fermat: a^(m-2) mod m for prime m.
  U384 exponent;
  sub_with_borrow(exponent, m_, U384::from_u64(2));
  return pow(a, exponent);
}

}  // namespace revelio::crypto

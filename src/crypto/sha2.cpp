#include "crypto/sha2.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "crypto/cpu_features.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace revelio::crypto {

namespace {

constexpr std::uint32_t kK256[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint64_t kK512[80] = {
    0x428a2f98d728ae22ULL, 0x7137449123ef65cdULL, 0xb5c0fbcfec4d3b2fULL,
    0xe9b5dba58189dbbcULL, 0x3956c25bf348b538ULL, 0x59f111f1b605d019ULL,
    0x923f82a4af194f9bULL, 0xab1c5ed5da6d8118ULL, 0xd807aa98a3030242ULL,
    0x12835b0145706fbeULL, 0x243185be4ee4b28cULL, 0x550c7dc3d5ffb4e2ULL,
    0x72be5d74f27b896fULL, 0x80deb1fe3b1696b1ULL, 0x9bdc06a725c71235ULL,
    0xc19bf174cf692694ULL, 0xe49b69c19ef14ad2ULL, 0xefbe4786384f25e3ULL,
    0x0fc19dc68b8cd5b5ULL, 0x240ca1cc77ac9c65ULL, 0x2de92c6f592b0275ULL,
    0x4a7484aa6ea6e483ULL, 0x5cb0a9dcbd41fbd4ULL, 0x76f988da831153b5ULL,
    0x983e5152ee66dfabULL, 0xa831c66d2db43210ULL, 0xb00327c898fb213fULL,
    0xbf597fc7beef0ee4ULL, 0xc6e00bf33da88fc2ULL, 0xd5a79147930aa725ULL,
    0x06ca6351e003826fULL, 0x142929670a0e6e70ULL, 0x27b70a8546d22ffcULL,
    0x2e1b21385c26c926ULL, 0x4d2c6dfc5ac42aedULL, 0x53380d139d95b3dfULL,
    0x650a73548baf63deULL, 0x766a0abb3c77b2a8ULL, 0x81c2c92e47edaee6ULL,
    0x92722c851482353bULL, 0xa2bfe8a14cf10364ULL, 0xa81a664bbc423001ULL,
    0xc24b8b70d0f89791ULL, 0xc76c51a30654be30ULL, 0xd192e819d6ef5218ULL,
    0xd69906245565a910ULL, 0xf40e35855771202aULL, 0x106aa07032bbd1b8ULL,
    0x19a4c116b8d2d0c8ULL, 0x1e376c085141ab53ULL, 0x2748774cdf8eeb99ULL,
    0x34b0bcb5e19b48a8ULL, 0x391c0cb3c5c95a63ULL, 0x4ed8aa4ae3418acbULL,
    0x5b9cca4f7763e373ULL, 0x682e6ff3d6b2b8a3ULL, 0x748f82ee5defb2fcULL,
    0x78a5636f43172f60ULL, 0x84c87814a1f0ab72ULL, 0x8cc702081a6439ecULL,
    0x90befffa23631e28ULL, 0xa4506cebde82bde9ULL, 0xbef9a3f7b2c67915ULL,
    0xc67178f2e372532bULL, 0xca273eceea26619cULL, 0xd186b8c721c0c207ULL,
    0xeada7dd6cde0eb1eULL, 0xf57d4f7fee6ed178ULL, 0x06f067aa72176fbaULL,
    0x0a637dc5a2c898a6ULL, 0x113f9804bef90daeULL, 0x1b710b35131c471bULL,
    0x28db77f523047d84ULL, 0x32caab7b40c72493ULL, 0x3c9ebe0a15c9bebcULL,
    0x431d67c49c100d4cULL, 0x4cc5d4becb3e42b6ULL, 0x597f299cfc657e2aULL,
    0x5fcb6fab3ad6faecULL, 0x6c44198c4a475817ULL};

inline std::uint32_t rotr32(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}
inline std::uint64_t rotr64(std::uint64_t x, int n) {
  return (x >> n) | (x << (64 - n));
}

// --- SHA-256 multi-block compression cores -------------------------------
//
// The streaming class below feeds whole runs of 64-byte blocks into one of
// two cores chosen once at first use: a portable scalar core with the
// message schedule kept in a rolling 16-word ring and the round function
// unrolled 8-wide (no 64-entry W spill), or a SHA-NI core on x86-64 CPUs
// that have it. Both produce identical digests; the FIPS 180-4 KATs in
// tests/test_crypto.cpp run against whichever core the host dispatches to,
// and REVELIO_NO_ISA=1 forces the scalar core for differential testing.

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

#define REV_SIG0(x) (rotr32((x), 7) ^ rotr32((x), 18) ^ ((x) >> 3))
#define REV_SIG1(x) (rotr32((x), 17) ^ rotr32((x), 19) ^ ((x) >> 10))
#define REV_RND(a, b, c, d, e, f, g, h, kw)                                  \
  do {                                                                       \
    const std::uint32_t t1 =                                                 \
        (h) + (rotr32((e), 6) ^ rotr32((e), 11) ^ rotr32((e), 25)) +         \
        (((e) & (f)) ^ (~(e) & (g))) + (kw);                                 \
    const std::uint32_t t2 =                                                 \
        (rotr32((a), 2) ^ rotr32((a), 13) ^ rotr32((a), 22)) +               \
        (((a) & (b)) ^ ((a) & (c)) ^ ((b) & (c)));                           \
    (d) += t1;                                                               \
    (h) = t1 + t2;                                                           \
  } while (0)
#define REV_W(i) w[(i) & 15]
#define REV_SCHED(i)                                                         \
  (REV_W(i) += REV_SIG1(REV_W((i) + 14)) + REV_W((i) + 9) +                  \
               REV_SIG0(REV_W((i) + 1)))
// Eight rounds with the working variables rotated through the argument
// list instead of shuffled through a temp, starting at round `i`.
#define REV_RND8(i, KW)                                                      \
  do {                                                                       \
    REV_RND(a, b, c, d, e, f, g, h, kK256[(i) + 0] + KW((i) + 0));           \
    REV_RND(h, a, b, c, d, e, f, g, kK256[(i) + 1] + KW((i) + 1));           \
    REV_RND(g, h, a, b, c, d, e, f, kK256[(i) + 2] + KW((i) + 2));           \
    REV_RND(f, g, h, a, b, c, d, e, kK256[(i) + 3] + KW((i) + 3));           \
    REV_RND(e, f, g, h, a, b, c, d, kK256[(i) + 4] + KW((i) + 4));           \
    REV_RND(d, e, f, g, h, a, b, c, kK256[(i) + 5] + KW((i) + 5));           \
    REV_RND(c, d, e, f, g, h, a, b, kK256[(i) + 6] + KW((i) + 6));           \
    REV_RND(b, c, d, e, f, g, h, a, kK256[(i) + 7] + KW((i) + 7));           \
  } while (0)

void compress256_scalar(std::uint32_t* state, const std::uint8_t* p,
                        std::size_t blocks) {
  while (blocks-- > 0) {
    std::uint32_t w[16];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(p + 4 * i);
    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    REV_RND8(0, REV_W);
    REV_RND8(8, REV_W);
    REV_RND8(16, REV_SCHED);
    REV_RND8(24, REV_SCHED);
    REV_RND8(32, REV_SCHED);
    REV_RND8(40, REV_SCHED);
    REV_RND8(48, REV_SCHED);
    REV_RND8(56, REV_SCHED);
    state[0] += a; state[1] += b; state[2] += c; state[3] += d;
    state[4] += e; state[5] += f; state[6] += g; state[7] += h;
    p += 64;
  }
}

#undef REV_RND8
#undef REV_SCHED
#undef REV_W
#undef REV_RND
#undef REV_SIG1
#undef REV_SIG0

#if defined(__x86_64__)
// SHA-NI core: four 16-byte schedule vectors kept in a ring; the two-round
// SHA256RNDS2 instruction consumes packed K+W pairs. Layout transforms at
// entry/exit follow the canonical Intel sequence (ABEF/CDGH register pair).
__attribute__((target("sha,sse4.1"))) void compress256_shani(
    std::uint32_t* state, const std::uint8_t* p, std::size_t blocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);     // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);          // CDGH

  while (blocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    __m128i msgs[4];
    for (int j = 0; j < 4; ++j) {
      msgs[j] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16 * j)),
          kShuffle);
    }
    for (int j = 0; j < 16; ++j) {
      if (j >= 4) {
        // W[j] = msg2(msg1(W[j-4], W[j-3]) + alignr(W[j-1], W[j-2]), W[j-1])
        __m128i x = _mm_sha256msg1_epu32(msgs[j & 3], msgs[(j + 1) & 3]);
        x = _mm_add_epi32(
            x, _mm_alignr_epi8(msgs[(j + 3) & 3], msgs[(j + 2) & 3], 4));
        msgs[j & 3] = _mm_sha256msg2_epu32(x, msgs[(j + 3) & 3]);
      }
      __m128i kw = _mm_add_epi32(
          msgs[j & 3],
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK256[4 * j])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, kw);
      kw = _mm_shuffle_epi32(kw, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, kw);
    }
    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    p += 64;
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);       // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);    // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0); // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);    // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}
#endif  // __x86_64__

using Compress256Fn = void (*)(std::uint32_t*, const std::uint8_t*,
                               std::size_t);

Compress256Fn resolve_compress256() {
#if defined(__x86_64__)
  if (cpu_has_sha_ni()) return compress256_shani;
#endif
  return compress256_scalar;
}

void compress256(std::uint32_t* state, const std::uint8_t* p,
                 std::size_t blocks) {
  static const Compress256Fn fn = resolve_compress256();
  fn(state, p, blocks);
}

// --- 8-way multi-buffer SHA-256 ------------------------------------------
//
// Eight independent streams, one 32-bit lane per stream. The AVX2 core runs
// the full round function on __m256i vectors — eight compressions for the
// price of one schedule walk. The fallback feeds each lane through the
// single-stream dispatch above (SHA-NI per lane, or scalar under
// REVELIO_NO_ISA=1), so all paths produce identical digests.

#if defined(__x86_64__)
#define REV8_ROR(x, n)                                                        \
  _mm256_or_si256(_mm256_srli_epi32((x), (n)),                                \
                  _mm256_slli_epi32((x), 32 - (n)))
#define REV8_ADD3(a, b, c) _mm256_add_epi32(_mm256_add_epi32((a), (b)), (c))
#define REV8_XOR3(a, b, c) _mm256_xor_si256(_mm256_xor_si256((a), (b)), (c))

__attribute__((target("avx2"))) void compress256_x8_avx2(
    std::uint32_t states[8][8], const std::uint8_t* const blocks[8],
    std::size_t nblocks) {
  // Transpose the eight states into vector-per-word form: s[j] holds word j
  // of every lane (lane l in 32-bit element l).
  __m256i s[8];
  for (int j = 0; j < 8; ++j) {
    s[j] = _mm256_set_epi32(
        static_cast<int>(states[7][j]), static_cast<int>(states[6][j]),
        static_cast<int>(states[5][j]), static_cast<int>(states[4][j]),
        static_cast<int>(states[3][j]), static_cast<int>(states[2][j]),
        static_cast<int>(states[1][j]), static_cast<int>(states[0][j]));
  }
  const std::uint8_t* p[8];
  for (int l = 0; l < 8; ++l) p[l] = blocks[l];

  while (nblocks-- > 0) {
    __m256i w[16];
    for (int i = 0; i < 16; ++i) {
      w[i] = _mm256_set_epi32(static_cast<int>(load_be32(p[7] + 4 * i)),
                              static_cast<int>(load_be32(p[6] + 4 * i)),
                              static_cast<int>(load_be32(p[5] + 4 * i)),
                              static_cast<int>(load_be32(p[4] + 4 * i)),
                              static_cast<int>(load_be32(p[3] + 4 * i)),
                              static_cast<int>(load_be32(p[2] + 4 * i)),
                              static_cast<int>(load_be32(p[1] + 4 * i)),
                              static_cast<int>(load_be32(p[0] + 4 * i)));
    }
    __m256i a = s[0], b = s[1], c = s[2], d = s[3];
    __m256i e = s[4], f = s[5], g = s[6], h = s[7];
    for (int i = 0; i < 64; ++i) {
      if (i >= 16) {
        const __m256i w15 = w[(i - 15) & 15];
        const __m256i w2 = w[(i - 2) & 15];
        const __m256i sig0 = REV8_XOR3(REV8_ROR(w15, 7), REV8_ROR(w15, 18),
                                       _mm256_srli_epi32(w15, 3));
        const __m256i sig1 = REV8_XOR3(REV8_ROR(w2, 17), REV8_ROR(w2, 19),
                                       _mm256_srli_epi32(w2, 10));
        w[i & 15] = REV8_ADD3(_mm256_add_epi32(w[i & 15], w[(i - 7) & 15]),
                              sig0, sig1);
      }
      const __m256i s1 = REV8_XOR3(REV8_ROR(e, 6), REV8_ROR(e, 11),
                                   REV8_ROR(e, 25));
      const __m256i ch = _mm256_xor_si256(_mm256_and_si256(e, f),
                                          _mm256_andnot_si256(e, g));
      const __m256i t1 = REV8_ADD3(
          REV8_ADD3(h, s1, ch),
          _mm256_set1_epi32(static_cast<int>(kK256[i])), w[i & 15]);
      const __m256i s0 = REV8_XOR3(REV8_ROR(a, 2), REV8_ROR(a, 13),
                                   REV8_ROR(a, 22));
      const __m256i maj = REV8_XOR3(_mm256_and_si256(a, b),
                                    _mm256_and_si256(a, c),
                                    _mm256_and_si256(b, c));
      const __m256i t2 = _mm256_add_epi32(s0, maj);
      h = g; g = f; f = e; e = _mm256_add_epi32(d, t1);
      d = c; c = b; b = a; a = _mm256_add_epi32(t1, t2);
    }
    s[0] = _mm256_add_epi32(s[0], a); s[1] = _mm256_add_epi32(s[1], b);
    s[2] = _mm256_add_epi32(s[2], c); s[3] = _mm256_add_epi32(s[3], d);
    s[4] = _mm256_add_epi32(s[4], e); s[5] = _mm256_add_epi32(s[5], f);
    s[6] = _mm256_add_epi32(s[6], g); s[7] = _mm256_add_epi32(s[7], h);
    for (int l = 0; l < 8; ++l) p[l] += 64;
  }

  for (int j = 0; j < 8; ++j) {
    alignas(32) std::uint32_t tmp[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), s[j]);
    for (int l = 0; l < 8; ++l) states[l][j] = tmp[l];
  }
}

#undef REV8_XOR3
#undef REV8_ADD3
#undef REV8_ROR
#endif  // __x86_64__

void compress256_x8_lanes(std::uint32_t states[8][8],
                          const std::uint8_t* const blocks[8],
                          std::size_t nblocks) {
  for (int l = 0; l < 8; ++l) compress256(states[l], blocks[l], nblocks);
}

using Compress256x8Fn = void (*)(std::uint32_t[8][8],
                                 const std::uint8_t* const[8], std::size_t);

Compress256x8Fn resolve_compress256_x8() {
#if defined(__x86_64__)
  if (cpu_has_avx2()) return compress256_x8_avx2;
#endif
  return compress256_x8_lanes;
}

void compress256_x8(std::uint32_t states[8][8],
                    const std::uint8_t* const blocks[8],
                    std::size_t nblocks) {
  static const Compress256x8Fn fn = resolve_compress256_x8();
  fn(states, blocks, nblocks);
}

}  // namespace

Sha256::Sha256() {
  static constexpr std::uint32_t kIv[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                           0xa54ff53a, 0x510e527f, 0x9b05688c,
                                           0x1f83d9ab, 0x5be0cd19};
  std::memcpy(h_, kIv, sizeof(h_));
}

void Sha256::compress(const std::uint8_t* block) {
  compress256(h_, block, 1);
}

void Sha256::update(ByteView data) {
  if (data.empty()) return;  // empty views may carry a null data()
  total_len_ += data.size();
  std::size_t off = 0;
  if (buf_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buf_len_);
    std::memcpy(buf_ + buf_len_, data.data(), take);
    buf_len_ += take;
    off = take;
    if (buf_len_ == 64) {
      compress(buf_);
      buf_len_ = 0;
    }
  }
  // Whole blocks go to the dispatched core in one call so the SHA-NI loop
  // keeps its state in registers across the entire run.
  const std::size_t whole = (data.size() - off) / 64;
  if (whole > 0) {
    compress256(h_, data.data() + off, whole);
    off += whole * 64;
  }
  if (off < data.size()) {
    std::memcpy(buf_, data.data() + off, data.size() - off);
    buf_len_ = data.size() - off;
  }
}

Digest32 Sha256::finish() {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad = 0x80;
  update(ByteView(&pad, 1));
  const std::uint8_t zero = 0;
  while (buf_len_ != 56) update(ByteView(&zero, 1));
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  // The final update pushes the buffer to exactly one block; total_len_ is
  // already captured so the extra accounting is harmless.
  update(ByteView(len_be, 8));
  Digest32 out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

Sha256x8::Sha256x8() {
  static constexpr std::uint32_t kIv[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                           0xa54ff53a, 0x510e527f, 0x9b05688c,
                                           0x1f83d9ab, 0x5be0cd19};
  for (auto& h : h_) std::memcpy(h, kIv, sizeof(kIv));
}

void Sha256x8::compress(const std::uint8_t* const blocks[kLanes],
                        std::size_t n) {
  compress256_x8(h_, blocks, n);
}

void Sha256x8::update(const ByteView views[kLanes]) {
  const std::size_t len = views[0].size();
  for (std::size_t l = 1; l < kLanes; ++l) {
    assert(views[l].size() == len && "lanes must advance in lockstep");
  }
  if (len == 0) return;
  total_len_ += len;
  std::size_t off = 0;
  if (buf_len_ > 0) {
    const std::size_t take = std::min(len, std::size_t{64} - buf_len_);
    for (std::size_t l = 0; l < kLanes; ++l) {
      std::memcpy(buf_[l] + buf_len_, views[l].data(), take);
    }
    buf_len_ += take;
    off = take;
    if (buf_len_ == 64) {
      const std::uint8_t* blocks[kLanes];
      for (std::size_t l = 0; l < kLanes; ++l) blocks[l] = buf_[l];
      compress(blocks, 1);
      buf_len_ = 0;
    }
  }
  const std::size_t whole = (len - off) / 64;
  if (whole > 0) {
    const std::uint8_t* blocks[kLanes];
    for (std::size_t l = 0; l < kLanes; ++l) {
      blocks[l] = views[l].data() + off;
    }
    compress(blocks, whole);
    off += whole * 64;
  }
  if (off < len) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      std::memcpy(buf_[l], views[l].data() + off, len - off);
    }
    buf_len_ = len - off;
  }
}

void Sha256x8::finish(Digest32 out[kLanes]) {
  // Every lane has seen total_len_ bytes, so one padding computation serves
  // all eight.
  const std::uint64_t bit_len = total_len_ * 8;
  std::uint8_t tail[kLanes][72];
  std::size_t tail_len = 0;
  tail_len = (buf_len_ < 56) ? (56 - buf_len_) : (120 - buf_len_);
  for (std::size_t l = 0; l < kLanes; ++l) {
    std::memset(tail[l], 0, tail_len);
    tail[l][0] = 0x80;
    for (int i = 0; i < 8; ++i) {
      tail[l][tail_len + i] =
          static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    }
  }
  ByteView tails[kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) {
    tails[l] = ByteView(tail[l], tail_len + 8);
  }
  update(tails);
  assert(buf_len_ == 0);
  for (std::size_t l = 0; l < kLanes; ++l) {
    for (int i = 0; i < 8; ++i) {
      out[l][4 * i] = static_cast<std::uint8_t>(h_[l][i] >> 24);
      out[l][4 * i + 1] = static_cast<std::uint8_t>(h_[l][i] >> 16);
      out[l][4 * i + 2] = static_cast<std::uint8_t>(h_[l][i] >> 8);
      out[l][4 * i + 3] = static_cast<std::uint8_t>(h_[l][i]);
    }
  }
}

void sha256_x8(const ByteView views[Sha256x8::kLanes],
               Digest32 out[Sha256x8::kLanes]) {
  Sha256x8 h;
  h.update(views);
  h.finish(out);
}

Sha512Core::Sha512Core(bool is384) {
  static constexpr std::uint64_t kIv512[8] = {
      0x6a09e667f3bcc908ULL, 0xbb67ae8584caa73bULL, 0x3c6ef372fe94f82bULL,
      0xa54ff53a5f1d36f1ULL, 0x510e527fade682d1ULL, 0x9b05688c2b3e6c1fULL,
      0x1f83d9abfb41bd6bULL, 0x5be0cd19137e2179ULL};
  static constexpr std::uint64_t kIv384[8] = {
      0xcbbb9d5dc1059ed8ULL, 0x629a292a367cd507ULL, 0x9159015a3070dd17ULL,
      0x152fecd8f70e5939ULL, 0x67332667ffc00b31ULL, 0x8eb44a8768581511ULL,
      0xdb0c2e0d64f98fa7ULL, 0x47b5481dbefa4fa4ULL};
  std::memcpy(h_, is384 ? kIv384 : kIv512, sizeof(h_));
}

void Sha512Core::compress(const std::uint8_t* block) {
  std::uint64_t w[80];
  for (int i = 0; i < 16; ++i) {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v = (v << 8) | block[8 * i + b];
    w[i] = v;
  }
  for (int i = 16; i < 80; ++i) {
    const std::uint64_t s0 =
        rotr64(w[i - 15], 1) ^ rotr64(w[i - 15], 8) ^ (w[i - 15] >> 7);
    const std::uint64_t s1 =
        rotr64(w[i - 2], 19) ^ rotr64(w[i - 2], 61) ^ (w[i - 2] >> 6);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint64_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  std::uint64_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
  for (int i = 0; i < 80; ++i) {
    const std::uint64_t s1 = rotr64(e, 14) ^ rotr64(e, 18) ^ rotr64(e, 41);
    const std::uint64_t ch = (e & f) ^ (~e & g);
    const std::uint64_t t1 = h + s1 + ch + kK512[i] + w[i];
    const std::uint64_t s0 = rotr64(a, 28) ^ rotr64(a, 34) ^ rotr64(a, 39);
    const std::uint64_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint64_t t2 = s0 + maj;
    h = g; g = f; f = e; e = d + t1;
    d = c; c = b; b = a; a = t1 + t2;
  }
  h_[0] += a; h_[1] += b; h_[2] += c; h_[3] += d;
  h_[4] += e; h_[5] += f; h_[6] += g; h_[7] += h;
}

void Sha512Core::update(ByteView data) {
  if (data.empty()) return;  // empty views may carry a null data()
  total_len_ += data.size();
  std::size_t off = 0;
  if (buf_len_ > 0) {
    const std::size_t take = std::min(data.size(), 128 - buf_len_);
    std::memcpy(buf_ + buf_len_, data.data(), take);
    buf_len_ += take;
    off = take;
    if (buf_len_ == 128) {
      compress(buf_);
      buf_len_ = 0;
    }
  }
  while (off + 128 <= data.size()) {
    compress(data.data() + off);
    off += 128;
  }
  if (off < data.size()) {
    std::memcpy(buf_, data.data() + off, data.size() - off);
    buf_len_ = data.size() - off;
  }
}

Digest64 Sha512Core::finish_raw() {
  const std::uint64_t bit_len = total_len_ * 8;  // 128-bit length: high part 0
  const std::uint8_t pad = 0x80;
  update(ByteView(&pad, 1));
  const std::uint8_t zero = 0;
  while (buf_len_ != 112) update(ByteView(&zero, 1));
  std::uint8_t len_be[16] = {};
  for (int i = 0; i < 8; ++i) {
    len_be[8 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(ByteView(len_be, 16));
  Digest64 out;
  for (int i = 0; i < 8; ++i) {
    for (int b = 0; b < 8; ++b) {
      out[8 * i + b] = static_cast<std::uint8_t>(h_[i] >> (56 - 8 * b));
    }
  }
  return out;
}

Digest32 sha256(ByteView data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

Digest48 sha384(ByteView data) {
  Sha384 h;
  h.update(data);
  return h.finish();
}

Digest64 sha512(ByteView data) {
  Sha512 h;
  h.update(data);
  return h.finish();
}

}  // namespace revelio::crypto

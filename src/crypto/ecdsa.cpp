#include "crypto/ecdsa.hpp"

#include <cassert>
#include <chrono>
#include <map>

#include "crypto/sha2.hpp"
#include "obs/metrics.hpp"

namespace revelio::crypto {

Bytes EcdsaSignature::encode(const Curve& curve) const {
  const std::size_t len = curve.params().byte_length;
  return concat(r.to_bytes_be(len), s.to_bytes_be(len));
}

Result<EcdsaSignature> EcdsaSignature::decode(const Curve& curve,
                                              ByteView bytes) {
  const std::size_t len = curve.params().byte_length;
  if (bytes.size() != 2 * len) {
    return Error::make("ecdsa.bad_signature_length");
  }
  EcdsaSignature sig;
  sig.r = U384::from_bytes_be(bytes.subspan(0, len));
  sig.s = U384::from_bytes_be(bytes.subspan(len, len));
  return sig;
}

namespace {

/// Counts the call and feeds its real (steady-clock) duration into a
/// latency histogram when the enclosing scope exits. Sign/verify are the
/// CPU-dominant primitives of the attestation path, so they get histograms
/// rather than spans: they are called far too often to trace individually.
class OpTimer {
 public:
  explicit OpTimer(const char* op) : op_(op) {
    obs::metrics().counter(std::string("crypto.") + op_ + ".count").inc();
  }
  ~OpTimer() {
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    obs::metrics()
        .histogram(std::string("crypto.") + op_ + ".real_us",
                   {50, 100, 250, 500, 1000, 2500, 5000, 10000})
        .observe(us);
  }

 private:
  const char* op_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// Draws a uniform scalar in [1, n-1] by rejection sampling.
U384 sample_scalar(const Curve& curve, HmacDrbg& drbg) {
  const std::size_t len = curve.params().byte_length;
  while (true) {
    const Bytes candidate_bytes = drbg.generate(len);
    const U384 candidate = U384::from_bytes_be(candidate_bytes);
    if (!candidate.is_zero() && candidate.cmp(curve.params().n) < 0) {
      return candidate;
    }
  }
}

}  // namespace

EcKeyPair ec_generate(const Curve& curve, HmacDrbg& drbg) {
  EcKeyPair kp;
  kp.d = sample_scalar(curve, drbg);
  kp.q = curve.scalar_mult_base(kp.d);
  return kp;
}

U384 hash_to_scalar(const Curve& curve, ByteView msg_hash) {
  // Leftmost min(hash bits, curve bits) bits, as in FIPS 186-4 §6.4.
  const std::size_t n_bytes = curve.params().byte_length;
  const std::size_t take = std::min(msg_hash.size(), n_bytes);
  U384 z = U384::from_bytes_be(msg_hash.subspan(0, take));
  // The curve order's bit length is a multiple of 8 for P-256/P-384, so no
  // sub-byte shift is needed.
  return curve.scalar_field().reduce(z);
}

EcdsaSignature ecdsa_sign(const Curve& curve, const U384& priv,
                          ByteView msg_hash) {
  OpTimer timer("ecdsa_sign");
  const MontCtx& fn = curve.scalar_field();
  const U384 z = hash_to_scalar(curve, msg_hash);

  // Deterministic nonce source bound to the key and message.
  const Bytes seed =
      concat(priv.to_bytes_be(curve.params().byte_length), msg_hash);
  HmacDrbg nonce_drbg(seed, to_bytes(std::string_view("ecdsa-nonce")));

  while (true) {
    const U384 k = sample_scalar(curve, nonce_drbg);
    const Curve::Point kg = curve.scalar_mult_base(k);
    const U384 r = fn.reduce(kg.x);
    if (r.is_zero()) continue;

    // s = k^-1 (z + r d) mod n, computed in the Montgomery domain.
    const U384 k_mont = fn.to_mont(k);
    const U384 r_mont = fn.to_mont(r);
    const U384 d_mont = fn.to_mont(priv);
    const U384 z_mont = fn.to_mont(z);
    const U384 rd = fn.mul(r_mont, d_mont);
    const U384 sum = fn.add(z_mont, rd);
    const U384 k_inv = fn.inv(k_mont);
    U384 s = fn.from_mont(fn.mul(k_inv, sum));
    if (s.is_zero()) continue;

    // Normalize to an EVEN-y nonce point: when y(kG) is odd, emit the
    // malleability twin (r, n - s), whose implied nonce point is -kG. Both
    // forms are standard-valid signatures; fixing the parity lets batch
    // verification reconstruct R from r alone (lift_x_even) with no sign
    // ambiguity.
    if (kg.y.bit(0)) {
      sub_with_borrow(s, curve.params().n, s);
    }

    return EcdsaSignature{r, s};
  }
}

bool ecdsa_verify(const Curve& curve, const Curve::Point& pub,
                  ByteView msg_hash, const EcdsaSignature& sig) {
  OpTimer timer("ecdsa_verify");
  if (pub.infinity || !curve.on_curve(pub)) return false;
  const U384& n = curve.params().n;
  if (sig.r.is_zero() || sig.r.cmp(n) >= 0) return false;
  if (sig.s.is_zero() || sig.s.cmp(n) >= 0) return false;

  const MontCtx& fn = curve.scalar_field();
  const U384 z = hash_to_scalar(curve, msg_hash);

  const U384 s_mont = fn.to_mont(sig.s);
  const U384 s_inv = fn.inv(s_mont);
  const U384 u1 = fn.from_mont(fn.mul(fn.to_mont(z), s_inv));
  const U384 u2 = fn.from_mont(fn.mul(fn.to_mont(sig.r), s_inv));

  // u1*G + u2*Q over one shared (half-length) doubling chain, with the
  // generator's fixed-base table and cached per-key tables for Q.
  const Curve::Point sum = curve.double_scalar_mult_base(u1, u2, pub);
  if (sum.infinity) return false;

  const U384 v = fn.reduce(sum.x);
  return v == sig.r;
}

namespace {

/// Batch coefficients a_i bound to the whole batch transcript: a forger
/// cannot pick signatures whose per-item errors cancel in the combined
/// equation without predicting the coefficients, which depend on every
/// byte of every item. a_0 is fixed to 1 (scaling the whole equation by
/// a_0^-1 shows the first coefficient carries no soundness).
std::vector<U384> batch_coefficients(const Curve& curve,
                                     const std::vector<EcdsaBatchItem>& items,
                                     const std::vector<U384>& zs) {
  Sha256 seed_hash;
  seed_hash.update(to_bytes(std::string_view("revelio-ecdsa-batch-v1")));
  for (std::size_t i = 0; i < items.size(); ++i) {
    seed_hash.update(curve.encode_point(items[i].pub));
    seed_hash.update(items[i].sig.r.to_bytes_be());
    seed_hash.update(items[i].sig.s.to_bytes_be());
    seed_hash.update(zs[i].to_bytes_be());
  }
  const Digest32 seed = seed_hash.finish();

  std::vector<U384> coeffs(items.size());
  coeffs[0] = U384::from_u64(1);
  for (std::size_t i = 1; i < items.size(); ++i) {
    Sha256 h;
    h.update(seed.view());
    std::uint8_t idx[8];
    for (int b = 0; b < 8; ++b) {
      idx[b] = static_cast<std::uint8_t>(i >> (8 * b));
    }
    h.update(ByteView(idx, sizeof(idx)));
    // 128-bit coefficients: soundness error 2^-128, and the per-signature
    // ladder term stays a third of a full-width scalar multiplication.
    coeffs[i] = U384::from_bytes_be(h.finish().view().subspan(0, 16));
    if (coeffs[i].is_zero()) coeffs[i] = U384::from_u64(1);
  }
  return coeffs;
}

}  // namespace

std::vector<bool> ecdsa_verify_batch(const Curve& curve,
                                     const std::vector<EcdsaBatchItem>& items) {
  std::vector<bool> verdicts(items.size(), false);
  if (items.empty()) return verdicts;
  if (items.size() == 1) {
    verdicts[0] = ecdsa_verify(curve, items[0].pub, items[0].msg_hash,
                               items[0].sig);
    return verdicts;
  }

  OpTimer timer("ecdsa_verify_batch");
  obs::metrics()
      .counter("crypto.ecdsa_verify_batch.sigs")
      .inc(items.size());
  const MontCtx& fn = curve.scalar_field();
  const U384& n = curve.params().n;
  const U384& p = curve.params().p;

  // Pass 1: the same structural prechecks as ecdsa_verify. Items failing
  // them are invalid outright; items whose nonce point cannot be
  // reconstructed (r is not an x-coordinate — possible for the rare valid
  // signature with x in [n, p)) cannot join the combined equation and go
  // to the individual path instead.
  std::vector<std::size_t> batched;   // indices in the combined equation
  std::vector<std::size_t> singles;   // indices verified individually
  std::vector<U384> zs(items.size());
  std::vector<Curve::Point> nonce_pts(items.size());
  batched.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const EcdsaBatchItem& it = items[i];
    if (it.pub.infinity || !curve.on_curve(it.pub)) continue;
    if (it.sig.r.is_zero() || it.sig.r.cmp(n) >= 0) continue;
    if (it.sig.s.is_zero() || it.sig.s.cmp(n) >= 0) continue;
    zs[i] = hash_to_scalar(curve, it.msg_hash);
    const auto r_pt = curve.lift_x_even(it.sig.r);
    if (!r_pt.has_value()) {
      singles.push_back(i);
      continue;
    }
    nonce_pts[i] = *r_pt;
    batched.push_back(i);
  }

  if (!batched.empty()) {
    const std::vector<U384> coeffs = batch_coefficients(curve, items, zs);

    // All s_i^-1 with ONE field inversion (Montgomery's trick): invert the
    // running product, then peel one factor per item walking backwards.
    std::vector<U384> s_inv(batched.size());
    {
      std::vector<U384> prefix(batched.size());
      U384 acc = fn.one();
      for (std::size_t j = 0; j < batched.size(); ++j) {
        acc = fn.mul(acc, fn.to_mont(items[batched[j]].sig.s));
        prefix[j] = acc;
      }
      U384 inv_acc = fn.inv(acc);
      for (std::size_t j = batched.size(); j-- > 0;) {
        s_inv[j] = j == 0 ? inv_acc : fn.mul(inv_acc, prefix[j - 1]);
        inv_acc = fn.mul(inv_acc, fn.to_mont(items[batched[j]].sig.s));
      }
    }

    // Fold the G terms into one scalar and group equal public keys into one
    // full-width term each (the gateway verifies one VCEK across sessions).
    U384 u_g = U384::zero();  // Montgomery domain accumulator
    std::map<Bytes, std::size_t> q_index;
    std::vector<Curve::MsmTerm> full_terms;
    std::vector<Curve::MsmTerm> small_terms;
    small_terms.reserve(batched.size());
    for (std::size_t j = 0; j < batched.size(); ++j) {
      const std::size_t i = batched[j];
      const U384 a_mont = fn.to_mont(coeffs[i]);
      const U384 u1 = fn.mul(fn.to_mont(zs[i]), s_inv[j]);
      const U384 u2 = fn.mul(fn.to_mont(items[i].sig.r), s_inv[j]);
      u_g = fn.add(u_g, fn.mul(a_mont, u1));

      const Bytes q_key = curve.encode_point(items[i].pub);
      const auto [it, fresh] = q_index.emplace(q_key, full_terms.size());
      if (fresh) {
        full_terms.push_back(
            Curve::MsmTerm{U384::zero(), items[i].pub});
      }
      full_terms[it->second].scalar =
          fn.add(full_terms[it->second].scalar, fn.mul(a_mont, u2));

      // -R_i with the small coefficient a_i: the subtraction side of the
      // combined equation.
      Curve::Point neg_r = nonce_pts[i];
      if (!neg_r.y.is_zero()) sub_with_borrow(neg_r.y, p, neg_r.y);
      small_terms.push_back(Curve::MsmTerm{coeffs[i], neg_r});
    }
    for (auto& term : full_terms) term.scalar = fn.from_mont(term.scalar);

    const Curve::Point sum = curve.multi_scalar_mult_base(
        fn.from_mont(u_g), full_terms, small_terms);
    if (sum.infinity) {
      for (const std::size_t i : batched) verdicts[i] = true;
    } else {
      // Fail closed: something in the batch is wrong (or merely
      // non-normalized). Re-verify each batched item individually to hand
      // back exact per-signature verdicts.
      obs::metrics().counter("crypto.ecdsa_verify_batch.fallback.count").inc();
      singles.insert(singles.end(), batched.begin(), batched.end());
    }
  }

  for (const std::size_t i : singles) {
    verdicts[i] =
        ecdsa_verify(curve, items[i].pub, items[i].msg_hash,
                     items[i].sig);
  }
  return verdicts;
}

Result<Bytes> ecdh_shared_secret(const Curve& curve, const U384& priv,
                                 const Curve::Point& peer) {
  if (peer.infinity || !curve.on_curve(peer)) {
    return Error::make("ecdh.invalid_peer_point");
  }
  const Curve::Point shared = curve.scalar_mult(priv, peer);
  if (shared.infinity) {
    return Error::make("ecdh.degenerate_result");
  }
  return shared.x.to_bytes_be(curve.params().byte_length);
}

}  // namespace revelio::crypto

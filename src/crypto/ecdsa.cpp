#include "crypto/ecdsa.hpp"

#include <cassert>
#include <chrono>

#include "obs/metrics.hpp"

namespace revelio::crypto {

Bytes EcdsaSignature::encode(const Curve& curve) const {
  const std::size_t len = curve.params().byte_length;
  return concat(r.to_bytes_be(len), s.to_bytes_be(len));
}

Result<EcdsaSignature> EcdsaSignature::decode(const Curve& curve,
                                              ByteView bytes) {
  const std::size_t len = curve.params().byte_length;
  if (bytes.size() != 2 * len) {
    return Error::make("ecdsa.bad_signature_length");
  }
  EcdsaSignature sig;
  sig.r = U384::from_bytes_be(bytes.subspan(0, len));
  sig.s = U384::from_bytes_be(bytes.subspan(len, len));
  return sig;
}

namespace {

/// Counts the call and feeds its real (steady-clock) duration into a
/// latency histogram when the enclosing scope exits. Sign/verify are the
/// CPU-dominant primitives of the attestation path, so they get histograms
/// rather than spans: they are called far too often to trace individually.
class OpTimer {
 public:
  explicit OpTimer(const char* op) : op_(op) {
    obs::metrics().counter(std::string("crypto.") + op_ + ".count").inc();
  }
  ~OpTimer() {
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    obs::metrics()
        .histogram(std::string("crypto.") + op_ + ".real_us",
                   {50, 100, 250, 500, 1000, 2500, 5000, 10000})
        .observe(us);
  }

 private:
  const char* op_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// Draws a uniform scalar in [1, n-1] by rejection sampling.
U384 sample_scalar(const Curve& curve, HmacDrbg& drbg) {
  const std::size_t len = curve.params().byte_length;
  while (true) {
    const Bytes candidate_bytes = drbg.generate(len);
    const U384 candidate = U384::from_bytes_be(candidate_bytes);
    if (!candidate.is_zero() && candidate.cmp(curve.params().n) < 0) {
      return candidate;
    }
  }
}

}  // namespace

EcKeyPair ec_generate(const Curve& curve, HmacDrbg& drbg) {
  EcKeyPair kp;
  kp.d = sample_scalar(curve, drbg);
  kp.q = curve.scalar_mult_base(kp.d);
  return kp;
}

U384 hash_to_scalar(const Curve& curve, ByteView msg_hash) {
  // Leftmost min(hash bits, curve bits) bits, as in FIPS 186-4 §6.4.
  const std::size_t n_bytes = curve.params().byte_length;
  const std::size_t take = std::min(msg_hash.size(), n_bytes);
  U384 z = U384::from_bytes_be(msg_hash.subspan(0, take));
  // The curve order's bit length is a multiple of 8 for P-256/P-384, so no
  // sub-byte shift is needed.
  return curve.scalar_field().reduce(z);
}

EcdsaSignature ecdsa_sign(const Curve& curve, const U384& priv,
                          ByteView msg_hash) {
  OpTimer timer("ecdsa_sign");
  const MontCtx& fn = curve.scalar_field();
  const U384 z = hash_to_scalar(curve, msg_hash);

  // Deterministic nonce source bound to the key and message.
  const Bytes seed =
      concat(priv.to_bytes_be(curve.params().byte_length), msg_hash);
  HmacDrbg nonce_drbg(seed, to_bytes(std::string_view("ecdsa-nonce")));

  while (true) {
    const U384 k = sample_scalar(curve, nonce_drbg);
    const Curve::Point kg = curve.scalar_mult_base(k);
    const U384 r = fn.reduce(kg.x);
    if (r.is_zero()) continue;

    // s = k^-1 (z + r d) mod n, computed in the Montgomery domain.
    const U384 k_mont = fn.to_mont(k);
    const U384 r_mont = fn.to_mont(r);
    const U384 d_mont = fn.to_mont(priv);
    const U384 z_mont = fn.to_mont(z);
    const U384 rd = fn.mul(r_mont, d_mont);
    const U384 sum = fn.add(z_mont, rd);
    const U384 k_inv = fn.inv(k_mont);
    const U384 s = fn.from_mont(fn.mul(k_inv, sum));
    if (s.is_zero()) continue;

    return EcdsaSignature{r, s};
  }
}

bool ecdsa_verify(const Curve& curve, const Curve::Point& pub,
                  ByteView msg_hash, const EcdsaSignature& sig) {
  OpTimer timer("ecdsa_verify");
  if (pub.infinity || !curve.on_curve(pub)) return false;
  const U384& n = curve.params().n;
  if (sig.r.is_zero() || sig.r.cmp(n) >= 0) return false;
  if (sig.s.is_zero() || sig.s.cmp(n) >= 0) return false;

  const MontCtx& fn = curve.scalar_field();
  const U384 z = hash_to_scalar(curve, msg_hash);

  const U384 s_mont = fn.to_mont(sig.s);
  const U384 s_inv = fn.inv(s_mont);
  const U384 u1 = fn.from_mont(fn.mul(fn.to_mont(z), s_inv));
  const U384 u2 = fn.from_mont(fn.mul(fn.to_mont(sig.r), s_inv));

  // u1*G + u2*Q over one shared (half-length) doubling chain, with the
  // generator's fixed-base table and cached per-key tables for Q.
  const Curve::Point sum = curve.double_scalar_mult_base(u1, u2, pub);
  if (sum.infinity) return false;

  const U384 v = fn.reduce(sum.x);
  return v == sig.r;
}

Result<Bytes> ecdh_shared_secret(const Curve& curve, const U384& priv,
                                 const Curve::Point& peer) {
  if (peer.infinity || !curve.on_curve(peer)) {
    return Error::make("ecdh.invalid_peer_point");
  }
  const Curve::Point shared = curve.scalar_mult(priv, peer);
  if (shared.infinity) {
    return Error::make("ecdh.degenerate_result");
  }
  return shared.x.to_bytes_be(curve.params().byte_length);
}

}  // namespace revelio::crypto

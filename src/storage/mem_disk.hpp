// In-memory disk — the simulation's physical storage medium.
//
// The disk lives on the (untrusted) host side of the trust boundary: the
// cloud provider can read and scribble over it at will, which the attack
// tests exercise through `raw_tamper`. I/O counters feed the Fig 5/6
// benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/block_device.hpp"

namespace revelio::storage {

struct IoStats {
  std::uint64_t blocks_read = 0;
  std::uint64_t blocks_written = 0;
};

class MemDisk final : public BlockDevice {
 public:
  MemDisk(std::size_t block_size, std::uint64_t block_count);

  std::size_t block_size() const override { return block_size_; }
  std::uint64_t block_count() const override { return block_count_; }
  Status read_block(std::uint64_t index, std::span<std::uint8_t> out) override;
  Status write_block(std::uint64_t index, ByteView data) override;

  const IoStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Host-side tampering: flips bits without going through the device-mapper
  /// stack, the way a malicious cloud provider would edit the backing file.
  void raw_tamper(std::uint64_t byte_offset, std::uint8_t xor_mask);

  /// Host-side raw inspection (offline attack on data at rest).
  Bytes raw_dump(std::uint64_t byte_offset, std::size_t length) const;

 private:
  std::size_t block_size_;
  std::uint64_t block_count_;
  std::vector<std::uint8_t> data_;
  IoStats stats_;
};

}  // namespace revelio::storage

#include "storage/dm_verity.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace revelio::storage {

namespace {

// Per-sweep staging size for bulk leaf hashing: device reads stay on the
// calling thread (BlockDevice implementations mutate their I/O stats), the
// hashing fans out over the pool in 64-leaf grains.
constexpr std::uint64_t kSweepBlocks = 256;  // 1 MiB at 4 KiB blocks
constexpr std::size_t kLeafGrain = 64;

/// Reads every block of `dev` and returns the leaf digests, hashing each
/// staged sweep in parallel. Shared by Verity::format and
/// VerityDevice::verify_all.
Result<std::vector<crypto::Digest32>> hash_device_leaves(BlockDevice& dev) {
  const std::size_t bs = dev.block_size();
  const std::uint64_t n = dev.block_count();
  std::vector<crypto::Digest32> leaves(n);
  Bytes buf(bs * static_cast<std::size_t>(std::min<std::uint64_t>(
                     std::max<std::uint64_t>(n, 1), kSweepBlocks)));
  for (std::uint64_t start = 0; start < n; start += kSweepBlocks) {
    const std::size_t m =
        static_cast<std::size_t>(std::min<std::uint64_t>(kSweepBlocks, n - start));
    for (std::size_t j = 0; j < m; ++j) {
      std::span<std::uint8_t> slot(buf.data() + j * bs, bs);
      if (auto st = dev.read_block(start + j, slot); !st.ok()) {
        return st.error();
      }
    }
    common::parallel_for(
        m,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            leaves[start + i] =
                crypto::MerkleTree::hash_leaf(ByteView(buf.data() + i * bs, bs));
          }
        },
        kLeafGrain);
  }
  return leaves;
}

}  // namespace

Result<VerityMetadata> Verity::format(BlockDevice& data_dev,
                                      BlockDevice& hash_dev,
                                      const VerityParams& params) {
  if (data_dev.block_size() != params.data_block_size) {
    return Error::make("verity.block_size_mismatch",
                       "data device block size differs from verity config");
  }
  auto leaves = hash_device_leaves(data_dev);
  if (!leaves.ok()) return leaves.error();
  auto tree = crypto::MerkleTree::from_leaves(std::move(*leaves));

  const Bytes serialized = tree.serialize();
  const std::uint64_t needed =
      (serialized.size() + hash_dev.block_size() - 1) / hash_dev.block_size();
  if (needed + 1 > hash_dev.block_count()) {
    return Error::make("verity.hash_device_too_small");
  }
  // Block 0: length header; blocks 1..: serialized tree.
  Bytes header;
  append_u64be(header, serialized.size());
  header.resize(hash_dev.block_size(), 0);
  if (auto st = hash_dev.write_block(0, header); !st.ok()) return st.error();
  if (auto st = hash_dev.write(hash_dev.block_size(), serialized); !st.ok()) {
    return st.error();
  }

  VerityMetadata meta;
  meta.root_hash = tree.root();
  meta.data_block_count = data_dev.block_count();
  return meta;
}

namespace {

Result<std::shared_ptr<VerityDevice>> open_impl(
    std::shared_ptr<BlockDevice> data_dev,
    std::shared_ptr<BlockDevice> hash_dev,
    const crypto::Digest32& expected_root) {
  Bytes header(hash_dev->block_size());
  if (auto st = hash_dev->read_block(0, header); !st.ok()) return st.error();
  const std::uint64_t length = read_u64be(header, 0);
  if (length == 0 ||
      length > (hash_dev->block_count() - 1) * hash_dev->block_size()) {
    return Error::make("verity.bad_hash_header");
  }
  auto serialized = hash_dev->read(hash_dev->block_size(),
                                   static_cast<std::size_t>(length));
  if (!serialized.ok()) return serialized.error();
  auto tree = crypto::MerkleTree::deserialize(*serialized);
  if (!tree.ok()) {
    return Error::make("verity.corrupt_hash_device",
                       tree.error().to_string());
  }
  if (!(tree->root() == expected_root)) {
    return Error::make("verity.root_mismatch",
                       "hash device root does not match kernel cmdline root");
  }
  if (tree->leaf_count() != data_dev->block_count()) {
    return Error::make("verity.leaf_count_mismatch");
  }
  return std::make_shared<VerityDevice>(std::move(data_dev),
                                        std::move(*tree));
}

}  // namespace

Result<std::shared_ptr<VerityDevice>> Verity::open(
    std::shared_ptr<BlockDevice> data_dev,
    std::shared_ptr<BlockDevice> hash_dev,
    const crypto::Digest32& expected_root) {
  obs::Span span("storage.verity.open");
  span.attr("data_blocks", data_dev->block_count());
  auto device =
      open_impl(std::move(data_dev), std::move(hash_dev), expected_root);
  if (!device.ok()) {
    span.attr("result", device.error().code);
    obs::metrics()
        .counter("storage.verity_open.fail.count",
                 {{"reason", device.error().code}})
        .inc();
  } else {
    span.attr("result", "ok");
  }
  return device;
}

VerityDevice::VerityDevice(std::shared_ptr<BlockDevice> data_dev,
                           crypto::MerkleTree tree)
    : data_dev_(std::move(data_dev)), tree_(std::move(tree)) {
  verified_.resize(tree_.level_count());
  for (std::size_t l = 0; l < tree_.level_count(); ++l) {
    verified_[l].assign(tree_.level(l).size(), false);
  }
  // The root was matched against the expected (cmdline) hash before this
  // device was handed out, so the top level starts trusted.
  if (!verified_.empty()) verified_.back()[0] = true;
}

Status VerityDevice::verify_block(std::uint64_t idx, ByteView data) {
  const auto index = static_cast<std::size_t>(idx);
  const auto mismatch = [idx] {
    return Error::make("verity.block_mismatch",
                       "block " + std::to_string(idx) +
                           " failed integrity verification");
  };
  if (tree_.level_count() == 0 || index >= tree_.level(0).size()) {
    return mismatch();
  }
  // The leaf hash is recomputed unconditionally: the bitmap caches trust in
  // *tree nodes*, never in data-block contents, so post-verification
  // tampering of the backing device is still caught on the next read.
  const crypto::Digest32 leaf = crypto::MerkleTree::hash_leaf(data);
  if (!(leaf == tree_.level(0)[index])) return mismatch();

  // Climb until the first ancestor already authenticated against the root.
  // Each step hashes a stored sibling pair and compares it to the stored
  // parent; reaching a verified node transitively authenticates the chain.
  std::size_t level = 0;
  std::size_t pos = index;
  while (!verified_[level][pos]) {
    const auto& nodes = tree_.level(level);
    const std::size_t left = pos & ~std::size_t{1};
    const std::size_t right = (left + 1 < nodes.size()) ? left + 1 : left;
    const crypto::Digest32 parent =
        crypto::MerkleTree::hash_inner(nodes[left], nodes[right]);
    if (!(parent == tree_.level(level + 1)[pos / 2])) return mismatch();
    ++level;
    pos /= 2;
  }
  const std::size_t walked = level;  // inner hashes computed this read

  // Both halves of each checked pair hashed into an authenticated parent,
  // so mark sibling pairs — not just the direct ancestors — as verified.
  pos = index;
  for (std::size_t l = 0; l < walked; ++l) {
    const std::size_t left = pos & ~std::size_t{1};
    verified_[l][left] = true;
    if (left + 1 < verified_[l].size()) verified_[l][left + 1] = true;
    pos /= 2;
  }

  if (walked + 1 == tree_.level_count()) {
    obs::metrics()
        .counter("storage.verity_read.ancestor_cache.full_walk.count")
        .inc();
  } else {
    obs::metrics()
        .counter("storage.verity_read.ancestor_cache.hit.count")
        .inc();
  }
  return Status::success();
}

Status VerityDevice::read_block(std::uint64_t index,
                                std::span<std::uint8_t> out) {
  // Counters + a latency histogram, not a span: this runs once per block
  // and a span per read would flood the tracer during verify_all.
  const auto t0 = std::chrono::steady_clock::now();
  obs::metrics().counter("storage.verity_read.block.count").inc();
  Status st = data_dev_->read_block(index, out);
  if (st.ok()) st = verify_block(index, out);
  if (!st.ok()) {
    obs::metrics()
        .counter("storage.verity_read.fail.count",
                 {{"reason", st.error().code}})
        .inc();
  }
  obs::metrics()
      .histogram("storage.verity_read.real_us",
                 {1, 5, 10, 25, 50, 100, 250, 1000})
      .observe(std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - t0)
                   .count());
  return st;
}

Status VerityDevice::write_block(std::uint64_t, ByteView) {
  return Error::make("verity.read_only",
                     "dm-verity devices reject all writes");
}

Status VerityDevice::verify_all() {
  obs::Span span("storage.verity.verify_all");
  span.attr("blocks", block_count());
  const std::uint64_t n = block_count();
  obs::metrics().counter("storage.verity_read.block.count").inc(n);

  const auto fail = [&](const Error& err) -> Status {
    obs::metrics()
        .counter("storage.verity_read.fail.count", {{"reason", err.code}})
        .inc();
    span.attr("result", err.code);
    return err;
  };

  // O(n) leaf hashes: one bulk sweep over the device instead of per-read
  // path verification (which costs O(n log n) inner hashes in total).
  auto leaves = hash_device_leaves(*data_dev_);
  if (!leaves.ok()) return fail(leaves.error());

  if (n > 0) {
    const auto& expect = tree_.level(0);
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!((*leaves)[i] == expect[i])) {
        return fail(Error::make("verity.block_mismatch",
                                "block " + std::to_string(i) +
                                    " failed integrity verification"));
      }
    }
    // O(n) inner hashes: re-derive the root from the freshly hashed leaves
    // and compare to the trusted root, instead of trusting the stored
    // middle levels of the tree.
    const auto rebuilt = crypto::MerkleTree::from_leaves(std::move(*leaves));
    if (!(rebuilt.root() == tree_.root())) {
      return fail(Error::make("verity.tree_mismatch",
                              "hash tree inconsistent with device contents"));
    }
  }

  // Everything below the root has now been authenticated end-to-end.
  for (auto& level : verified_) {
    std::fill(level.begin(), level.end(), true);
  }
  span.attr("result", "ok");
  return Status::success();
}

}  // namespace revelio::storage

#include "storage/dm_verity.hpp"

#include <chrono>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace revelio::storage {

Result<VerityMetadata> Verity::format(BlockDevice& data_dev,
                                      BlockDevice& hash_dev,
                                      const VerityParams& params) {
  if (data_dev.block_size() != params.data_block_size) {
    return Error::make("verity.block_size_mismatch",
                       "data device block size differs from verity config");
  }
  std::vector<crypto::Digest32> leaves;
  leaves.reserve(data_dev.block_count());
  Bytes block(data_dev.block_size());
  for (std::uint64_t i = 0; i < data_dev.block_count(); ++i) {
    if (auto st = data_dev.read_block(i, block); !st.ok()) return st.error();
    leaves.push_back(crypto::MerkleTree::hash_leaf(block));
  }
  auto tree = crypto::MerkleTree::from_leaves(std::move(leaves));

  const Bytes serialized = tree.serialize();
  const std::uint64_t needed =
      (serialized.size() + hash_dev.block_size() - 1) / hash_dev.block_size();
  if (needed + 1 > hash_dev.block_count()) {
    return Error::make("verity.hash_device_too_small");
  }
  // Block 0: length header; blocks 1..: serialized tree.
  Bytes header;
  append_u64be(header, serialized.size());
  header.resize(hash_dev.block_size(), 0);
  if (auto st = hash_dev.write_block(0, header); !st.ok()) return st.error();
  if (auto st = hash_dev.write(hash_dev.block_size(), serialized); !st.ok()) {
    return st.error();
  }

  VerityMetadata meta;
  meta.root_hash = tree.root();
  meta.data_block_count = data_dev.block_count();
  return meta;
}

namespace {

Result<std::shared_ptr<VerityDevice>> open_impl(
    std::shared_ptr<BlockDevice> data_dev,
    std::shared_ptr<BlockDevice> hash_dev,
    const crypto::Digest32& expected_root) {
  Bytes header(hash_dev->block_size());
  if (auto st = hash_dev->read_block(0, header); !st.ok()) return st.error();
  const std::uint64_t length = read_u64be(header, 0);
  if (length == 0 ||
      length > (hash_dev->block_count() - 1) * hash_dev->block_size()) {
    return Error::make("verity.bad_hash_header");
  }
  auto serialized = hash_dev->read(hash_dev->block_size(),
                                   static_cast<std::size_t>(length));
  if (!serialized.ok()) return serialized.error();
  auto tree = crypto::MerkleTree::deserialize(*serialized);
  if (!tree.ok()) {
    return Error::make("verity.corrupt_hash_device",
                       tree.error().to_string());
  }
  if (!(tree->root() == expected_root)) {
    return Error::make("verity.root_mismatch",
                       "hash device root does not match kernel cmdline root");
  }
  if (tree->leaf_count() != data_dev->block_count()) {
    return Error::make("verity.leaf_count_mismatch");
  }
  return std::make_shared<VerityDevice>(std::move(data_dev),
                                        std::move(*tree));
}

}  // namespace

Result<std::shared_ptr<VerityDevice>> Verity::open(
    std::shared_ptr<BlockDevice> data_dev,
    std::shared_ptr<BlockDevice> hash_dev,
    const crypto::Digest32& expected_root) {
  obs::Span span("storage.verity.open");
  span.attr("data_blocks", data_dev->block_count());
  auto device =
      open_impl(std::move(data_dev), std::move(hash_dev), expected_root);
  if (!device.ok()) {
    span.attr("result", device.error().code);
    obs::metrics()
        .counter("storage.verity_open.fail.count",
                 {{"reason", device.error().code}})
        .inc();
  } else {
    span.attr("result", "ok");
  }
  return device;
}

VerityDevice::VerityDevice(std::shared_ptr<BlockDevice> data_dev,
                           crypto::MerkleTree tree)
    : data_dev_(std::move(data_dev)), tree_(std::move(tree)) {}

Status VerityDevice::read_block(std::uint64_t index,
                                std::span<std::uint8_t> out) {
  // Counters + a latency histogram, not a span: this runs once per block
  // and a span per read would flood the tracer during verify_all.
  const auto t0 = std::chrono::steady_clock::now();
  obs::metrics().counter("storage.verity_read.block.count").inc();
  Status st = data_dev_->read_block(index, out);
  if (st.ok()) {
    const crypto::Digest32 leaf = crypto::MerkleTree::hash_leaf(out);
    if (!crypto::MerkleTree::verify_path(leaf, index, tree_.path(index),
                                         tree_.leaf_count(), tree_.root())) {
      st = Error::make("verity.block_mismatch",
                       "block " + std::to_string(index) +
                           " failed integrity verification");
    }
  }
  if (!st.ok()) {
    obs::metrics()
        .counter("storage.verity_read.fail.count",
                 {{"reason", st.error().code}})
        .inc();
  }
  obs::metrics()
      .histogram("storage.verity_read.real_us",
                 {1, 5, 10, 25, 50, 100, 250, 1000})
      .observe(std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - t0)
                   .count());
  return st;
}

Status VerityDevice::write_block(std::uint64_t, ByteView) {
  return Error::make("verity.read_only",
                     "dm-verity devices reject all writes");
}

Status VerityDevice::verify_all() {
  obs::Span span("storage.verity.verify_all");
  span.attr("blocks", block_count());
  Bytes block(block_size());
  for (std::uint64_t i = 0; i < block_count(); ++i) {
    if (auto st = read_block(i, block); !st.ok()) {
      span.attr("result", st.error().code);
      return st;
    }
  }
  span.attr("result", "ok");
  return Status::success();
}

}  // namespace revelio::storage

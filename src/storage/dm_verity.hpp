// dm-verity: transparent block-level integrity verification.
//
// The build pipeline computes a SHA-256 Merkle tree over the rootfs data
// device and stores it on a separate hash device; only the root hash
// travels through the measured kernel command line (§5.1.2). At boot the
// VM re-opens the device read-only: every block read is verified against
// the tree, and the tree itself is validated against the root hash — a bit
// flipped anywhere on the data device turns reads of that block into
// errors, and a tampered hash device fails to open at all (§6.1.2/§6.1.3).
//
// Read-path cost model (mirrors the Linux dm-verity target): the device
// keeps a per-level bitmap of inner nodes already authenticated against
// the trusted root. A read always recomputes the data block's leaf hash —
// tampered data is rejected even with a fully warm cache — but the upward
// climb stops at the first verified ancestor, so a read after warm-up
// costs one leaf hash and zero inner hashes instead of O(log n) hashes
// per read. `verify_all` is O(n) leaf hashes plus O(n) inner hashes total
// (sequential device reads, parallel hashing) rather than O(n log n).
#pragma once

#include <memory>
#include <vector>

#include "crypto/merkle.hpp"
#include "storage/block_device.hpp"

namespace revelio::storage {

struct VerityParams {
  std::size_t data_block_size = 4096;  // paper: 4 kB data and hash blocks
};

/// Output of formatting: what the build pipeline publishes.
struct VerityMetadata {
  crypto::Digest32 root_hash;       // goes on the kernel command line
  std::uint64_t data_block_count = 0;
};

class VerityDevice;

class Verity {
 public:
  /// Computes the Merkle tree over `data` and serializes it onto `hash_dev`.
  /// Runs at image build time, on the service provider's premises.
  static Result<VerityMetadata> format(BlockDevice& data_dev,
                                       BlockDevice& hash_dev,
                                       const VerityParams& params = {});

  /// Opens a verity target: loads the tree from the hash device and checks
  /// its root equals `expected_root` (from the kernel command line). This is
  /// the `veritysetup open` step of the boot sequence.
  static Result<std::shared_ptr<VerityDevice>> open(
      std::shared_ptr<BlockDevice> data_dev,
      std::shared_ptr<BlockDevice> hash_dev,
      const crypto::Digest32& expected_root);
};

/// Read-only, per-read-verified view of the data device.
class VerityDevice final : public BlockDevice {
 public:
  VerityDevice(std::shared_ptr<BlockDevice> data_dev, crypto::MerkleTree tree);

  std::size_t block_size() const override { return data_dev_->block_size(); }
  std::uint64_t block_count() const override {
    return data_dev_->block_count();
  }

  /// Reads and verifies one block; fails with verity.block_mismatch if the
  /// backing block does not hash to the recorded leaf. The leaf hash is
  /// recomputed on every call; the inner-node climb short-circuits at the
  /// first ancestor already authenticated against the root
  /// (`storage.verity_read.ancestor_cache.{hit,full_walk}.count`).
  Status read_block(std::uint64_t index, std::span<std::uint8_t> out) override;

  /// Always fails: the rootfs is immutable during runtime (requirement F4).
  Status write_block(std::uint64_t index, ByteView data) override;

  /// Verifies every block — the boot-time "dm-verity verify" service whose
  /// latency dominates Table 1. O(n) leaf + O(n) inner hashes, hashed in
  /// parallel; on success the whole ancestor bitmap is marked verified.
  Status verify_all();

  const crypto::Digest32& root_hash() const { return tree_.root(); }

 private:
  /// Checks `data` (already read from the backing device) against the tree:
  /// leaf recompute + climb to the first verified ancestor, marking newly
  /// authenticated nodes on the way. Single-threaded, like all device I/O.
  Status verify_block(std::uint64_t index, ByteView data);

  std::shared_ptr<BlockDevice> data_dev_;
  crypto::MerkleTree tree_;
  // verified_[level][i] — tree node (level, i) has been authenticated
  // against the trusted root. The top (root) level starts verified: the
  // root was checked against the kernel-cmdline hash at open time.
  std::vector<std::vector<bool>> verified_;
};

}  // namespace revelio::storage

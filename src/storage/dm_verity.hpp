// dm-verity: transparent block-level integrity verification.
//
// The build pipeline computes a SHA-256 Merkle tree over the rootfs data
// device and stores it on a separate hash device; only the root hash
// travels through the measured kernel command line (§5.1.2). At boot the
// VM re-opens the device read-only: every block read is verified against
// the tree, and the tree itself is validated against the root hash — a bit
// flipped anywhere on the data device turns reads of that block into
// errors, and a tampered hash device fails to open at all (§6.1.2/§6.1.3).
#pragma once

#include <memory>

#include "crypto/merkle.hpp"
#include "storage/block_device.hpp"

namespace revelio::storage {

struct VerityParams {
  std::size_t data_block_size = 4096;  // paper: 4 kB data and hash blocks
};

/// Output of formatting: what the build pipeline publishes.
struct VerityMetadata {
  crypto::Digest32 root_hash;       // goes on the kernel command line
  std::uint64_t data_block_count = 0;
};

class VerityDevice;

class Verity {
 public:
  /// Computes the Merkle tree over `data` and serializes it onto `hash_dev`.
  /// Runs at image build time, on the service provider's premises.
  static Result<VerityMetadata> format(BlockDevice& data_dev,
                                       BlockDevice& hash_dev,
                                       const VerityParams& params = {});

  /// Opens a verity target: loads the tree from the hash device and checks
  /// its root equals `expected_root` (from the kernel command line). This is
  /// the `veritysetup open` step of the boot sequence.
  static Result<std::shared_ptr<VerityDevice>> open(
      std::shared_ptr<BlockDevice> data_dev,
      std::shared_ptr<BlockDevice> hash_dev,
      const crypto::Digest32& expected_root);
};

/// Read-only, per-read-verified view of the data device.
class VerityDevice final : public BlockDevice {
 public:
  VerityDevice(std::shared_ptr<BlockDevice> data_dev, crypto::MerkleTree tree);

  std::size_t block_size() const override { return data_dev_->block_size(); }
  std::uint64_t block_count() const override {
    return data_dev_->block_count();
  }

  /// Reads and verifies one block; fails with verity.block_mismatch if the
  /// backing block does not hash to the recorded leaf.
  Status read_block(std::uint64_t index, std::span<std::uint8_t> out) override;

  /// Always fails: the rootfs is immutable during runtime (requirement F4).
  Status write_block(std::uint64_t index, ByteView data) override;

  /// Verifies every block — the boot-time "dm-verity verify" service whose
  /// latency dominates Table 1.
  Status verify_all();

  const crypto::Digest32& root_hash() const { return tree_.root(); }

 private:
  std::shared_ptr<BlockDevice> data_dev_;
  crypto::MerkleTree tree_;
};

}  // namespace revelio::storage

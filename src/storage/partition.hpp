// GPT-style partition table.
//
// The Revelio image builder lays out the disk as labelled partitions
// (rootfs, verity hash device, encrypted data volume). Partition UUIDs are
// fixed at build time — one of the paper's reproducibility measures
// ("specifying a uuid for each partition we create", §5.1.1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/block_device.hpp"

namespace revelio::storage {

struct PartitionEntry {
  std::string label;
  FixedBytes<16> uuid;
  std::uint64_t first_block = 0;
  std::uint64_t block_count = 0;
};

class PartitionTable {
 public:
  /// Appends a partition after the last one; returns its index.
  /// Block 0 is reserved for the table itself.
  std::size_t add(const std::string& label, const FixedBytes<16>& uuid,
                  std::uint64_t block_count);

  const std::vector<PartitionEntry>& entries() const { return entries_; }

  /// Finds a partition by label.
  Result<PartitionEntry> find(const std::string& label) const;

  /// Serializes into block 0 of `device`.
  Status write_to(BlockDevice& device) const;

  /// Parses the table from block 0 of `device`.
  static Result<PartitionTable> read_from(BlockDevice& device);

  /// Opens a partition as a block device slice.
  static Result<std::shared_ptr<BlockDevice>> open(
      std::shared_ptr<BlockDevice> device, const std::string& label);

  /// Total blocks used, including the table block.
  std::uint64_t blocks_used() const { return next_block_; }

 private:
  std::vector<PartitionEntry> entries_;
  std::uint64_t next_block_ = 1;  // block 0 holds the table
};

}  // namespace revelio::storage

#include "storage/imagefs.hpp"

namespace revelio::storage {

namespace {
constexpr std::uint32_t kMagic = 0x52494653;  // "RIFS"
// Fixed epoch stamped into every image: one of the reproducibility measures
// ("squashing all timestamps", §5.1.1).
constexpr std::uint64_t kBuildEpoch = 1672531200;  // 2023-01-01T00:00:00Z

std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) / a * a;
}
}  // namespace

void ImageFs::add_file(const std::string& path, Bytes content,
                       std::uint32_t mode) {
  files_[path] = FileInfo{mode, std::move(content)};
}

Result<Bytes> ImageFs::read_file(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) return Error::make("imagefs.not_found", path);
  return it->second.content;
}

std::vector<std::string> ImageFs::list() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, info] : files_) out.push_back(path);
  return out;
}

Bytes ImageFs::serialize(std::size_t block_size) const {
  // Pass 1: directory size.
  Bytes dir;
  append_u32be(dir, kMagic);
  append_u64be(dir, kBuildEpoch);
  append_u32be(dir, static_cast<std::uint32_t>(files_.size()));
  std::size_t dir_size = dir.size();
  for (const auto& [path, info] : files_) {
    dir_size += 4 + path.size() + 4 + 8 + 8;
  }
  std::uint64_t data_start = align_up(dir_size, block_size);

  // Pass 2: emit directory with final offsets.
  std::uint64_t offset = data_start;
  for (const auto& [path, info] : files_) {
    append_u32be(dir, static_cast<std::uint32_t>(path.size()));
    append(dir, path);
    append_u32be(dir, info.mode);
    append_u64be(dir, offset);
    append_u64be(dir, info.content.size());
    offset = align_up(offset + info.content.size(), block_size);
  }
  dir.resize(data_start, 0);

  // Pass 3: file data, block-aligned.
  Bytes image = std::move(dir);
  for (const auto& [path, info] : files_) {
    append(image, info.content);
    image.resize(align_up(image.size(), block_size), 0);
  }
  if (image.empty()) image.resize(block_size, 0);
  return image;
}

Result<ImageFs> ImageFs::parse(ByteView image) {
  if (image.size() < 16 || read_u32be(image, 0) != kMagic) {
    return Error::make("imagefs.bad_magic");
  }
  const std::uint32_t count = read_u32be(image, 12);
  std::size_t off = 16;
  ImageFs fs;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (off + 4 > image.size()) return Error::make("imagefs.truncated");
    const std::uint32_t path_len = read_u32be(image, off);
    off += 4;
    if (off + path_len + 4 + 8 + 8 > image.size()) {
      return Error::make("imagefs.truncated");
    }
    const std::string path(image.begin() + static_cast<std::ptrdiff_t>(off),
                           image.begin() +
                               static_cast<std::ptrdiff_t>(off + path_len));
    off += path_len;
    const std::uint32_t mode = read_u32be(image, off);
    off += 4;
    const std::uint64_t file_off = read_u64be(image, off);
    off += 8;
    const std::uint64_t size = read_u64be(image, off);
    off += 8;
    if (file_off + size > image.size()) {
      return Error::make("imagefs.bad_extent", path);
    }
    fs.add_file(path,
                to_bytes(image.subspan(file_off, static_cast<std::size_t>(size))),
                mode);
  }
  return fs;
}

Result<MountedFs> MountedFs::mount(std::shared_ptr<BlockDevice> device) {
  // Read the header, then exactly the directory bytes.
  auto head = device->read(0, 16);
  if (!head.ok()) return head.error();
  if (read_u32be(*head, 0) != kMagic) {
    return Error::make("imagefs.bad_magic", "mount failed");
  }
  const std::uint32_t count = read_u32be(*head, 12);

  MountedFs fs;
  fs.device_ = device;
  std::uint64_t off = 16;
  for (std::uint32_t i = 0; i < count; ++i) {
    auto len_buf = device->read(off, 4);
    if (!len_buf.ok()) return len_buf.error();
    const std::uint32_t path_len = read_u32be(*len_buf, 0);
    auto rest = device->read(off + 4, path_len + 4 + 8 + 8);
    if (!rest.ok()) return rest.error();
    const std::string path(rest->begin(),
                           rest->begin() + static_cast<std::ptrdiff_t>(path_len));
    DirEntry entry;
    entry.mode = read_u32be(*rest, path_len);
    entry.offset = read_u64be(*rest, path_len + 4);
    entry.size = read_u64be(*rest, path_len + 12);
    if (entry.offset + entry.size > device->size_bytes()) {
      return Error::make("imagefs.bad_extent", path);
    }
    fs.dir_[path] = entry;
    off += 4 + path_len + 4 + 8 + 8;
  }
  return fs;
}

Result<Bytes> MountedFs::read_file(const std::string& path) const {
  const auto it = dir_.find(path);
  if (it == dir_.end()) return Error::make("imagefs.not_found", path);
  return device_->read(it->second.offset,
                       static_cast<std::size_t>(it->second.size));
}

bool MountedFs::exists(const std::string& path) const {
  return dir_.count(path) > 0;
}

std::vector<std::string> MountedFs::list() const {
  std::vector<std::string> out;
  out.reserve(dir_.size());
  for (const auto& [path, entry] : dir_) out.push_back(path);
  return out;
}

}  // namespace revelio::storage

// Read-only image filesystem.
//
// A deliberately simple squashfs stand-in: a sorted directory of
// (path, mode, offset, size) entries followed by block-aligned file data.
// Serialization is canonical — entries sorted by path, a fixed build
// timestamp, no incidental ordering — so identical inputs produce a
// bit-identical image (requirement F5). `MountedFs` reads files through a
// BlockDevice, which is how per-file reads pick up dm-verity's per-block
// verification cost (Fig 6).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "storage/block_device.hpp"

namespace revelio::storage {

/// Builder + in-memory reader.
class ImageFs {
 public:
  struct FileInfo {
    std::uint32_t mode = 0644;
    Bytes content;
  };

  /// Adds or replaces a file. Paths are absolute ("/etc/nginx.conf").
  void add_file(const std::string& path, Bytes content,
                std::uint32_t mode = 0644);

  void remove_file(const std::string& path) { files_.erase(path); }

  bool exists(const std::string& path) const {
    return files_.count(path) > 0;
  }
  Result<Bytes> read_file(const std::string& path) const;
  std::vector<std::string> list() const;
  std::size_t file_count() const { return files_.size(); }

  /// Canonical serialization, padded to a whole number of `block_size`
  /// blocks; file data starts block-aligned.
  Bytes serialize(std::size_t block_size = 4096) const;

  static Result<ImageFs> parse(ByteView image);

 private:
  std::map<std::string, FileInfo> files_;  // map => canonical path order
};

/// File access over a block device without loading the whole image: only the
/// directory is read eagerly; file reads hit exactly the blocks that hold
/// the file.
class MountedFs {
 public:
  static Result<MountedFs> mount(std::shared_ptr<BlockDevice> device);

  Result<Bytes> read_file(const std::string& path) const;
  bool exists(const std::string& path) const;
  std::vector<std::string> list() const;

  struct DirEntry {
    std::uint32_t mode = 0;
    std::uint64_t offset = 0;  // byte offset within the device
    std::uint64_t size = 0;
  };

  const std::map<std::string, DirEntry>& directory() const { return dir_; }

 private:
  std::shared_ptr<BlockDevice> device_;
  std::map<std::string, DirEntry> dir_;
};

}  // namespace revelio::storage

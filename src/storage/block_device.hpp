// Block-device abstraction.
//
// Everything the confidential VM persists flows through this interface:
// the raw memory disk the (untrusted) hypervisor provides, partition
// slices of it, and the dm-crypt / dm-verity targets stacked on top —
// mirroring the Linux device-mapper architecture the paper builds on.
#pragma once

#include <cstdint>
#include <memory>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace revelio::storage {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual std::size_t block_size() const = 0;
  virtual std::uint64_t block_count() const = 0;

  /// Reads one whole block into `out` (out.size() == block_size()).
  virtual Status read_block(std::uint64_t index,
                            std::span<std::uint8_t> out) = 0;

  /// Writes one whole block.
  virtual Status write_block(std::uint64_t index, ByteView data) = 0;

  std::uint64_t size_bytes() const {
    return static_cast<std::uint64_t>(block_size()) * block_count();
  }

  /// Byte-granular read spanning blocks (read-modify on top of blocks).
  Result<Bytes> read(std::uint64_t offset, std::size_t length);

  /// Byte-granular write spanning blocks (read-modify-write).
  Status write(std::uint64_t offset, ByteView data);
};

/// Exposes a contiguous block range of a parent device as its own device.
/// This is how partitions are realised.
class SliceDevice final : public BlockDevice {
 public:
  SliceDevice(std::shared_ptr<BlockDevice> parent, std::uint64_t first_block,
              std::uint64_t block_count);

  std::size_t block_size() const override { return parent_->block_size(); }
  std::uint64_t block_count() const override { return block_count_; }
  Status read_block(std::uint64_t index, std::span<std::uint8_t> out) override;
  Status write_block(std::uint64_t index, ByteView data) override;

 private:
  std::shared_ptr<BlockDevice> parent_;
  std::uint64_t first_block_;
  std::uint64_t block_count_;
};

}  // namespace revelio::storage

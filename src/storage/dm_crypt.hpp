// dm-crypt: transparent block encryption (aes-xts-plain64).
//
// Mirrors the paper's cryptsetup configuration (§6.3.1): AES-XTS with the
// plain64 sector tweak and PBKDF2 (1000 iterations) key-slot derivation.
// A LUKS-style header at the front of the device stores the salt, the
// iteration count and a key-check digest; the payload follows. The volume
// key itself is the SEV-SNP sealing key derived from the VM measurement,
// so only an identically-measured VM can open the volume (requirement F6).
#pragma once

#include <memory>

#include "common/bytes.hpp"
#include "crypto/modes.hpp"
#include "storage/block_device.hpp"

namespace revelio::storage {

struct CryptParams {
  std::uint32_t pbkdf2_iterations = 1000;  // paper's cryptsetup setting
};

/// Decrypted view of the payload area of a formatted crypt volume.
class DmCryptDevice final : public BlockDevice {
 public:
  DmCryptDevice(std::shared_ptr<BlockDevice> backing,
                std::uint64_t payload_first_block, ByteView xts_key);

  std::size_t block_size() const override { return backing_->block_size(); }
  std::uint64_t block_count() const override;
  Status read_block(std::uint64_t index, std::span<std::uint8_t> out) override;
  Status write_block(std::uint64_t index, ByteView data) override;

 private:
  std::shared_ptr<BlockDevice> backing_;
  std::uint64_t payload_first_block_;
  // Holding the AesXts by value caches both expanded AES key schedules
  // (data + tweak cipher) for the lifetime of the device: the per-sector
  // read/write path never re-runs key expansion, only the block cipher and
  // the word-wise tweak update.
  crypto::AesXts xts_;
};

class CryptVolume {
 public:
  /// Formats `device`: writes the header and zero-encrypts nothing (lazy).
  /// `volume_key` is the high-entropy key (the sealing key); PBKDF2 stretches
  /// it with a fresh salt into the XTS key, exactly once at format time.
  static Result<std::shared_ptr<DmCryptDevice>> format(
      std::shared_ptr<BlockDevice> device, ByteView volume_key,
      ByteView salt, const CryptParams& params = {});

  /// Opens a previously formatted volume; fails on a wrong key or a
  /// corrupted header.
  static Result<std::shared_ptr<DmCryptDevice>> open(
      std::shared_ptr<BlockDevice> device, ByteView volume_key);

  /// True if `device` carries a crypt header (used by first-boot detection).
  static bool is_formatted(BlockDevice& device);
};

}  // namespace revelio::storage

#include "storage/dm_crypt.hpp"

#include "crypto/kdf.hpp"
#include "crypto/sha2.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace revelio::storage {

namespace {

constexpr std::uint32_t kMagic = 0x4c554b53;  // "LUKS" homage
constexpr std::uint64_t kHeaderBlocks = 1;
constexpr std::size_t kSaltSize = 32;
constexpr std::size_t kXtsKeySize = 64;

Bytes derive_xts_key(ByteView volume_key, ByteView salt,
                     std::uint32_t iterations) {
  return crypto::pbkdf2_sha256(volume_key, salt, iterations, kXtsKeySize);
}

/// Digest stored in the header to detect wrong keys at open time without
/// revealing the key: SHA-256 over a fixed tag and the derived key.
crypto::Digest32 key_check_digest(ByteView xts_key) {
  crypto::Sha256 h;
  h.update(to_bytes(std::string_view("revelio-crypt-keycheck")));
  h.update(xts_key);
  return h.finish();
}

}  // namespace

DmCryptDevice::DmCryptDevice(std::shared_ptr<BlockDevice> backing,
                             std::uint64_t payload_first_block,
                             ByteView xts_key)
    : backing_(std::move(backing)),
      payload_first_block_(payload_first_block),
      xts_(xts_key) {}

std::uint64_t DmCryptDevice::block_count() const {
  return backing_->block_count() - payload_first_block_;
}

Status DmCryptDevice::read_block(std::uint64_t index,
                                 std::span<std::uint8_t> out) {
  if (index >= block_count()) {
    return Error::make("blockdev.out_of_range", "crypt read past end");
  }
  obs::metrics().counter("storage.crypt_read.block.count").inc();
  if (auto st = backing_->read_block(payload_first_block_ + index, out);
      !st.ok()) {
    return st;
  }
  // plain64 sector number: index within the payload.
  xts_.decrypt_sector(index, out);
  return Status::success();
}

Status DmCryptDevice::write_block(std::uint64_t index, ByteView data) {
  if (index >= block_count()) {
    return Error::make("blockdev.out_of_range", "crypt write past end");
  }
  if (data.size() != block_size()) {
    return Error::make("blockdev.bad_buffer", "block buffer size mismatch");
  }
  obs::metrics().counter("storage.crypt_write.block.count").inc();
  Bytes ct = to_bytes(data);
  xts_.encrypt_sector(index, ct);
  return backing_->write_block(payload_first_block_ + index, ct);
}

Result<std::shared_ptr<DmCryptDevice>> CryptVolume::format(
    std::shared_ptr<BlockDevice> device, ByteView volume_key, ByteView salt,
    const CryptParams& params) {
  if (device->block_count() <= kHeaderBlocks) {
    return Error::make("crypt.device_too_small");
  }
  if (salt.size() != kSaltSize) {
    return Error::make("crypt.bad_salt", "salt must be 32 bytes");
  }
  const Bytes xts_key =
      derive_xts_key(volume_key, salt, params.pbkdf2_iterations);
  const crypto::Digest32 check = key_check_digest(xts_key);

  Bytes header;
  append_u32be(header, kMagic);
  append_u32be(header, params.pbkdf2_iterations);
  append(header, salt);
  append(header, check.view());
  header.resize(device->block_size(), 0);
  if (auto st = device->write_block(0, header); !st.ok()) return st.error();

  return std::make_shared<DmCryptDevice>(std::move(device), kHeaderBlocks,
                                         xts_key);
}

Result<std::shared_ptr<DmCryptDevice>> CryptVolume::open(
    std::shared_ptr<BlockDevice> device, ByteView volume_key) {
  obs::Span span("storage.crypt.open");
  auto fail = [&span](Error error) {
    span.attr("result", error.code);
    obs::metrics()
        .counter("storage.crypt_open.fail.count", {{"reason", error.code}})
        .inc();
    return error;
  };
  Bytes header(device->block_size());
  if (auto st = device->read_block(0, header); !st.ok()) {
    return fail(st.error());
  }
  if (header.size() < 8 + kSaltSize + 32 || read_u32be(header, 0) != kMagic) {
    return fail(Error::make("crypt.bad_header", "missing crypt magic"));
  }
  const std::uint32_t iterations = read_u32be(header, 4);
  const ByteView salt = ByteView(header).subspan(8, kSaltSize);
  const ByteView stored_check = ByteView(header).subspan(8 + kSaltSize, 32);

  const Bytes xts_key = derive_xts_key(volume_key, salt, iterations);
  const crypto::Digest32 check = key_check_digest(xts_key);
  if (!ct_equal(check.view(), stored_check)) {
    return fail(Error::make("crypt.wrong_key",
                            "key-check digest mismatch (wrong sealing key?)"));
  }
  span.attr("result", "ok");
  return std::make_shared<DmCryptDevice>(std::move(device), kHeaderBlocks,
                                         xts_key);
}

bool CryptVolume::is_formatted(BlockDevice& device) {
  Bytes header(device.block_size());
  if (auto st = device.read_block(0, header); !st.ok()) return false;
  return header.size() >= 4 && read_u32be(header, 0) == kMagic;
}

}  // namespace revelio::storage

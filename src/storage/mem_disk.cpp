#include "storage/mem_disk.hpp"

#include <algorithm>
#include <cassert>

namespace revelio::storage {

MemDisk::MemDisk(std::size_t block_size, std::uint64_t block_count)
    : block_size_(block_size),
      block_count_(block_count),
      data_(block_size * block_count, 0) {
  assert(block_size > 0);
}

Status MemDisk::read_block(std::uint64_t index, std::span<std::uint8_t> out) {
  if (index >= block_count_) {
    return Error::make("blockdev.out_of_range", "read past disk end");
  }
  if (out.size() != block_size_) {
    return Error::make("blockdev.bad_buffer", "block buffer size mismatch");
  }
  std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(index * block_size_),
              block_size_, out.begin());
  ++stats_.blocks_read;
  return Status::success();
}

Status MemDisk::write_block(std::uint64_t index, ByteView data) {
  if (index >= block_count_) {
    return Error::make("blockdev.out_of_range", "write past disk end");
  }
  if (data.size() != block_size_) {
    return Error::make("blockdev.bad_buffer", "block buffer size mismatch");
  }
  std::copy_n(data.begin(), block_size_,
              data_.begin() + static_cast<std::ptrdiff_t>(index * block_size_));
  ++stats_.blocks_written;
  return Status::success();
}

void MemDisk::raw_tamper(std::uint64_t byte_offset, std::uint8_t xor_mask) {
  if (byte_offset < data_.size()) data_[byte_offset] ^= xor_mask;
}

Bytes MemDisk::raw_dump(std::uint64_t byte_offset, std::size_t length) const {
  const std::uint64_t end = std::min<std::uint64_t>(
      byte_offset + length, static_cast<std::uint64_t>(data_.size()));
  if (byte_offset >= end) return {};
  return Bytes(data_.begin() + static_cast<std::ptrdiff_t>(byte_offset),
               data_.begin() + static_cast<std::ptrdiff_t>(end));
}

}  // namespace revelio::storage

#include "storage/partition.hpp"

namespace revelio::storage {

namespace {
constexpr std::uint32_t kMagic = 0x52505431;  // "RPT1"
}

std::size_t PartitionTable::add(const std::string& label,
                                const FixedBytes<16>& uuid,
                                std::uint64_t block_count) {
  PartitionEntry entry;
  entry.label = label;
  entry.uuid = uuid;
  entry.first_block = next_block_;
  entry.block_count = block_count;
  next_block_ += block_count;
  entries_.push_back(entry);
  return entries_.size() - 1;
}

Result<PartitionEntry> PartitionTable::find(const std::string& label) const {
  for (const auto& e : entries_) {
    if (e.label == label) return e;
  }
  return Error::make("partition.not_found", label);
}

Status PartitionTable::write_to(BlockDevice& device) const {
  Bytes buf;
  append_u32be(buf, kMagic);
  append_u32be(buf, static_cast<std::uint32_t>(entries_.size()));
  append_u64be(buf, next_block_);
  for (const auto& e : entries_) {
    append_u32be(buf, static_cast<std::uint32_t>(e.label.size()));
    append(buf, e.label);
    append(buf, e.uuid.view());
    append_u64be(buf, e.first_block);
    append_u64be(buf, e.block_count);
  }
  if (buf.size() > device.block_size()) {
    return Error::make("partition.table_too_large");
  }
  buf.resize(device.block_size(), 0);
  return device.write_block(0, buf);
}

Result<PartitionTable> PartitionTable::read_from(BlockDevice& device) {
  Bytes buf(device.block_size());
  if (auto st = device.read_block(0, buf); !st.ok()) return st.error();
  if (buf.size() < 16 || read_u32be(buf, 0) != kMagic) {
    return Error::make("partition.bad_magic");
  }
  PartitionTable table;
  const std::uint32_t count = read_u32be(buf, 4);
  table.next_block_ = read_u64be(buf, 8);
  std::size_t off = 16;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (off + 4 > buf.size()) return Error::make("partition.truncated");
    const std::uint32_t label_len = read_u32be(buf, off);
    off += 4;
    if (off + label_len + 16 + 16 > buf.size()) {
      return Error::make("partition.truncated");
    }
    PartitionEntry e;
    e.label.assign(buf.begin() + static_cast<std::ptrdiff_t>(off),
                   buf.begin() + static_cast<std::ptrdiff_t>(off + label_len));
    off += label_len;
    e.uuid = FixedBytes<16>::from(ByteView(buf).subspan(off, 16));
    off += 16;
    e.first_block = read_u64be(buf, off);
    off += 8;
    e.block_count = read_u64be(buf, off);
    off += 8;
    table.entries_.push_back(std::move(e));
  }
  return table;
}

Result<std::shared_ptr<BlockDevice>> PartitionTable::open(
    std::shared_ptr<BlockDevice> device, const std::string& label) {
  auto table = read_from(*device);
  if (!table.ok()) return table.error();
  auto entry = table->find(label);
  if (!entry.ok()) return entry.error();
  if (entry->first_block + entry->block_count > device->block_count()) {
    return Error::make("partition.out_of_range", label);
  }
  return std::shared_ptr<BlockDevice>(std::make_shared<SliceDevice>(
      std::move(device), entry->first_block, entry->block_count));
}

}  // namespace revelio::storage

#include "storage/block_device.hpp"

#include <algorithm>

namespace revelio::storage {

Result<Bytes> BlockDevice::read(std::uint64_t offset, std::size_t length) {
  if (offset + length > size_bytes()) {
    return Error::make("blockdev.out_of_range", "read past device end");
  }
  Bytes out;
  out.reserve(length);
  Bytes block(block_size());
  std::uint64_t index = offset / block_size();
  std::size_t within = offset % block_size();
  while (out.size() < length) {
    if (auto st = read_block(index, block); !st.ok()) return st.error();
    const std::size_t take =
        std::min(block_size() - within, length - out.size());
    out.insert(out.end(), block.begin() + static_cast<std::ptrdiff_t>(within),
               block.begin() + static_cast<std::ptrdiff_t>(within + take));
    within = 0;
    ++index;
  }
  return out;
}

Status BlockDevice::write(std::uint64_t offset, ByteView data) {
  if (offset + data.size() > size_bytes()) {
    return Error::make("blockdev.out_of_range", "write past device end");
  }
  Bytes block(block_size());
  std::uint64_t index = offset / block_size();
  std::size_t within = offset % block_size();
  std::size_t consumed = 0;
  while (consumed < data.size()) {
    const std::size_t take =
        std::min(block_size() - within, data.size() - consumed);
    if (take != block_size()) {
      // Partial block: read-modify-write.
      if (auto st = read_block(index, block); !st.ok()) return st;
    }
    std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(consumed), take,
                block.begin() + static_cast<std::ptrdiff_t>(within));
    if (auto st = write_block(index, block); !st.ok()) return st;
    consumed += take;
    within = 0;
    ++index;
  }
  return Status::success();
}

SliceDevice::SliceDevice(std::shared_ptr<BlockDevice> parent,
                         std::uint64_t first_block, std::uint64_t block_count)
    : parent_(std::move(parent)),
      first_block_(first_block),
      block_count_(block_count) {}

Status SliceDevice::read_block(std::uint64_t index,
                               std::span<std::uint8_t> out) {
  if (index >= block_count_) {
    return Error::make("blockdev.out_of_range", "slice read past end");
  }
  return parent_->read_block(first_block_ + index, out);
}

Status SliceDevice::write_block(std::uint64_t index, ByteView data) {
  if (index >= block_count_) {
    return Error::make("blockdev.out_of_range", "slice write past end");
  }
  return parent_->write_block(first_block_ + index, data);
}

}  // namespace revelio::storage

// Protected guest <-> AMD-SP message channel.
//
// Models the SNP guest request interface: at launch the AMD-SP provisions
// the guest with a VM Platform Communication Key (VMPCK); every
// MSG_REPORT_REQ / MSG_KEY_REQ exchange is AEAD-sealed under it with
// strictly increasing sequence numbers. The hypervisor shuttles the
// ciphertexts but can neither read nor forge nor replay them — the
// property the paper's "trusted path between the AMD-SP and the VM"
// (§2.1.1, §2.1.3) provides.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "common/sim_clock.hpp"
#include "crypto/modes.hpp"
#include "net/resilience.hpp"
#include "sevsnp/amd_sp.hpp"

namespace revelio::sevsnp {

class GuestChannel {
 public:
  /// The hypervisor shuttle: carries a sealed request to the SP and brings
  /// the sealed response back. The default transport delivers directly;
  /// tests and the chaos layer install flaky ones.
  using Transport = std::function<Result<Bytes>(ByteView sealed_request)>;
  /// Opens the channel for the currently running guest; fails if no
  /// measured guest is active.
  static Result<GuestChannel> open(AmdSp& sp);

  /// MSG_REPORT_REQ: attestation report with caller-chosen REPORT_DATA.
  Result<AttestationReport> request_report(const ReportData& report_data);

  /// MSG_KEY_REQ: derived (sealing) key.
  Result<Bytes> request_key(const KeyDerivationPolicy& policy,
                            std::size_t length = 32);

  /// MSG_RTMR_EXTEND: extends a runtime measurement register.
  Status extend_rtmr(std::size_t index, const Measurement& event_digest);

  /// MSG_COUNTER_REQ: reads (increment=false) or advances-and-returns
  /// (increment=true) one of the AMD-SP's measurement-bound monotonic
  /// counter slots — the guest's rollback-defence primitive.
  Result<std::uint64_t> request_counter(std::size_t index, bool increment);

  /// Low-level entry point used by attack tests: delivers an arbitrary
  /// sealed request to the SP side, as a malicious hypervisor would.
  Result<Bytes> deliver_to_sp(ByteView sealed_request);

  /// Guest-side sealing of a plaintext request at the *current* sequence
  /// number, without advancing it — lets tests construct replays.
  Bytes seal_request(ByteView plaintext) const;

  std::uint64_t guest_sequence() const { return guest_seq_; }

  /// Replaces the hypervisor shuttle (pass nullptr to restore the direct
  /// path). The shuttle is untrusted: it may drop or corrupt ciphertexts,
  /// never read or forge them.
  void set_transport(Transport transport) {
    transport_ = std::move(transport);
  }

  /// Arms transport retries: a transiently lost *request* is resent
  /// verbatim (safe — the SP never saw it, so the sequence still matches).
  /// If the SP processed the request and the *response* was lost, the
  /// resend fails authentication and the channel fails closed with
  /// `snp.channel_auth_failed`: the guest cannot distinguish that from a
  /// replay attack and must not silently resynchronise.
  void set_resilience(SimClock& clock, net::RetryPolicy policy) {
    clock_ = &clock;
    retry_ = policy;
  }

 private:
  GuestChannel(AmdSp& sp, Bytes vmpck);

  Result<Bytes> transact(ByteView plaintext_request);
  Result<Bytes> handle_request(ByteView plaintext) const;

  AmdSp* sp_;
  crypto::AeadCtrHmac aead_;
  std::uint64_t guest_seq_ = 1;  // next request sequence number
  std::uint64_t sp_expected_seq_ = 1;
  Transport transport_;
  SimClock* clock_ = nullptr;
  std::optional<net::RetryPolicy> retry_;
  crypto::HmacDrbg retry_jitter_{to_bytes("guest-channel-retry-jitter")};
};

}  // namespace revelio::sevsnp

#include "sevsnp/kds.hpp"

#include "common/hex.hpp"

namespace revelio::sevsnp {

namespace {
// Endorsement certificates are long-lived; give them a century so simulated
// clocks never outrun them.
constexpr std::uint64_t kCenturyUs = 100ull * 365 * 24 * 3600 * 1000 * 1000;
}  // namespace

KeyDistributionServer::KeyDistributionServer(crypto::HmacDrbg& drbg) {
  ark_ = std::make_unique<pki::CertificateAuthority>(
      pki::CertificateAuthority::create_root(
          crypto::p384(), {"ARK-Milan", "Advanced Micro Devices", "US"}, 0,
          kCenturyUs, drbg));
  ask_ = std::make_unique<pki::CertificateAuthority>(
      pki::CertificateAuthority::create_intermediate(
          crypto::p384(), {"SEV-Milan", "Advanced Micro Devices", "US"}, 0,
          kCenturyUs, *ark_, drbg));
  ark_cert_ = ark_->certificate();
  ask_cert_ = ask_->certificate();
}

void KeyDistributionServer::register_platform(const AmdSp& platform) {
  platforms_[platform.chip_id().bytes()] = &platform;
}

Result<pki::Certificate> KeyDistributionServer::fetch_vcek(
    const ChipId& chip_id, TcbVersion tcb) {
  const auto cache_key = std::make_pair(chip_id.bytes(), tcb.encode());
  if (const auto it = vcek_cache_.find(cache_key); it != vcek_cache_.end()) {
    return it->second;
  }
  const auto platform_it = platforms_.find(chip_id.bytes());
  if (platform_it == platforms_.end()) {
    return Error::make("kds.unknown_chip",
                       to_hex(chip_id.view()).substr(0, 16) + "...");
  }
  const Bytes vcek_pub = platform_it->second->vcek_public_key(tcb);
  pki::Certificate cert = ask_->issue_for_key(
      "P-384", vcek_pub,
      {"VCEK-" + to_hex(chip_id.view()).substr(0, 16), "AMD", "US"}, {}, 0,
      kCenturyUs);
  vcek_cache_[cache_key] = cert;
  return cert;
}

Status verify_report(const AttestationReport& report,
                     const pki::Certificate& vcek_cert,
                     const std::vector<pki::Certificate>& intermediates,
                     const std::vector<pki::Certificate>& roots,
                     const ReportVerifyOptions& options) {
  // 1. The VCEK certificate must chain to a pinned AMD root.
  pki::ChainVerifyOptions chain_options;
  chain_options.now_us = options.now_us;
  const Status chain_status =
      options.chain_cache != nullptr
          ? options.chain_cache->verify(vcek_cert, intermediates, roots,
                                        chain_options)
          : pki::verify_chain(vcek_cert, intermediates, roots, chain_options);
  if (!chain_status.ok()) {
    return Error::make("snp.vcek_chain_invalid",
                       chain_status.error().to_string());
  }
  // 2. The report signature must verify under the VCEK public key.
  const auto pub = crypto::p384().decode_point(vcek_cert.public_key);
  if (!pub.ok()) {
    return Error::make("snp.bad_vcek_key", pub.error().to_string());
  }
  auto sig = crypto::EcdsaSignature::decode(crypto::p384(), report.signature);
  if (!sig.ok()) {
    return Error::make("snp.bad_signature_encoding");
  }
  const auto hash = crypto::sha384(report.signed_body());
  if (!crypto::ecdsa_verify(crypto::p384(), *pub, hash.view(), *sig)) {
    return Error::make("snp.signature_invalid",
                       "report not signed by presented VCEK");
  }
  // 3. Optional TCB floor (anti-rollback for firmware, §6.1.4).
  if (options.minimum_tcb &&
      !report.reported_tcb.at_least(*options.minimum_tcb)) {
    return Error::make("snp.tcb_too_old", "reported TCB below minimum");
  }
  return Status::success();
}

}  // namespace revelio::sevsnp

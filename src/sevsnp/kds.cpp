#include "sevsnp/kds.hpp"

#include "common/hex.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace revelio::sevsnp {

namespace {
// Endorsement certificates are long-lived; give them a century so simulated
// clocks never outrun them.
constexpr std::uint64_t kCenturyUs = 100ull * 365 * 24 * 3600 * 1000 * 1000;
}  // namespace

KeyDistributionServer::KeyDistributionServer(crypto::HmacDrbg& drbg) {
  ark_ = std::make_unique<pki::CertificateAuthority>(
      pki::CertificateAuthority::create_root(
          crypto::p384(), {"ARK-Milan", "Advanced Micro Devices", "US"}, 0,
          kCenturyUs, drbg));
  ask_ = std::make_unique<pki::CertificateAuthority>(
      pki::CertificateAuthority::create_intermediate(
          crypto::p384(), {"SEV-Milan", "Advanced Micro Devices", "US"}, 0,
          kCenturyUs, *ark_, drbg));
  ark_cert_ = ark_->certificate();
  ask_cert_ = ask_->certificate();
}

void KeyDistributionServer::register_platform(const AmdSp& platform) {
  platforms_[platform.chip_id().bytes()] = &platform;
}

Result<pki::Certificate> KeyDistributionServer::fetch_vcek(
    const ChipId& chip_id, TcbVersion tcb) {
  const auto cache_key = std::make_pair(chip_id.bytes(), tcb.encode());
  if (const auto it = vcek_cache_.find(cache_key); it != vcek_cache_.end()) {
    return it->second;
  }
  const auto platform_it = platforms_.find(chip_id.bytes());
  if (platform_it == platforms_.end()) {
    return Error::make("kds.unknown_chip",
                       to_hex(chip_id.view()).substr(0, 16) + "...");
  }
  const Bytes vcek_pub = platform_it->second->vcek_public_key(tcb);
  const std::uint64_t not_after =
      vcek_not_after_us_ != 0 ? vcek_not_after_us_ : kCenturyUs;
  pki::Certificate cert = ask_->issue_for_key(
      "P-384", vcek_pub,
      {"VCEK-" + to_hex(chip_id.view()).substr(0, 16), "AMD", "US"}, {}, 0,
      not_after);
  vcek_cache_[cache_key] = cert;
  return cert;
}

Result<PreparedReportVerify> prepare_report_verify(
    const AttestationReport& report, const pki::Certificate& vcek_cert,
    const std::vector<pki::Certificate>& intermediates,
    const std::vector<pki::Certificate>& roots,
    const ReportVerifyOptions& options) {
  // 1. The VCEK certificate must chain to a pinned AMD root.
  pki::ChainVerifyOptions chain_options;
  chain_options.now_us = options.now_us;
  Status chain_status = Status::success();
  if (options.chain_cache != nullptr) {
    // The cache emits its own pki.chain_verify span + result counters.
    chain_status = options.chain_cache->verify(vcek_cert, intermediates,
                                               roots, chain_options);
  } else {
    obs::Span chain_span("pki.chain_verify");
    chain_span.attr("cache", "none");
    chain_span.attr("chain_len",
                    static_cast<std::uint64_t>(1 + intermediates.size()));
    chain_status =
        pki::verify_chain(vcek_cert, intermediates, roots, chain_options);
    const std::string result =
        chain_status.ok() ? "ok" : chain_status.error().code;
    chain_span.attr("result", result);
    obs::metrics()
        .counter("pki.chain_verify.result.count", {{"result", result}})
        .inc();
  }
  if (!chain_status.ok()) {
    return Error::make("snp.vcek_chain_invalid",
                       chain_status.error().to_string());
  }
  // 2. Decode the VCEK key and signature, and digest the signed body. The
  // span covers the decode + hash here; the ECDSA equation itself runs in
  // the caller (inline for verify_report, pooled for the batch verifier).
  obs::Span sig_span("sevsnp.signature_verify");
  const auto pub = crypto::p384().decode_point(vcek_cert.public_key);
  if (!pub.ok()) {
    sig_span.attr("result", "bad_vcek_key");
    return Error::make("snp.bad_vcek_key", pub.error().to_string());
  }
  auto sig = crypto::EcdsaSignature::decode(crypto::p384(), report.signature);
  if (!sig.ok()) {
    sig_span.attr("result", "bad_encoding");
    return Error::make("snp.bad_signature_encoding");
  }
  PreparedReportVerify prepared;
  prepared.vcek_pub = *pub;
  prepared.signature = *sig;
  prepared.digest = crypto::sha384(report.signed_body());
  sig_span.attr("result", "ok");
  return prepared;
}

Status finish_report_verify(const AttestationReport& report,
                            bool signature_ok,
                            const ReportVerifyOptions& options) {
  if (!signature_ok) {
    return Error::make("snp.signature_invalid",
                       "report not signed by presented VCEK");
  }
  // 3. Optional TCB floor (anti-rollback for firmware, §6.1.4).
  if (options.minimum_tcb &&
      !report.reported_tcb.at_least(*options.minimum_tcb)) {
    return Error::make("snp.tcb_too_old", "reported TCB below minimum");
  }
  return Status::success();
}

void record_report_verify_result(const Status& st) {
  const std::string result = st.ok() ? "ok" : st.error().code;
  obs::metrics()
      .counter("sevsnp.report_verify.result.count", {{"result", result}})
      .inc();
}

Status verify_report(const AttestationReport& report,
                     const pki::Certificate& vcek_cert,
                     const std::vector<pki::Certificate>& intermediates,
                     const std::vector<pki::Certificate>& roots,
                     const ReportVerifyOptions& options) {
  obs::Span span("sevsnp.report_verify");
  Status st = Status::success();
  auto prepared =
      prepare_report_verify(report, vcek_cert, intermediates, roots, options);
  if (!prepared.ok()) {
    st = prepared.error();
  } else {
    const bool sig_ok =
        crypto::ecdsa_verify(crypto::p384(), prepared->vcek_pub,
                             prepared->digest.view(), prepared->signature);
    st = finish_report_verify(report, sig_ok, options);
  }
  const std::string result = st.ok() ? "ok" : st.error().code;
  span.attr("result", result);
  span.attr("measurement_ok", st.ok());
  record_report_verify_result(st);
  return st;
}

}  // namespace revelio::sevsnp

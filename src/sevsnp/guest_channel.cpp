#include "sevsnp/guest_channel.hpp"

#include "obs/metrics.hpp"

namespace revelio::sevsnp {

namespace {

constexpr std::uint8_t kMsgReportReq = 1;
constexpr std::uint8_t kMsgKeyReq = 2;
constexpr std::uint8_t kMsgRtmrExtend = 3;
constexpr std::uint8_t kMsgCounterReq = 4;

// Directions keep request and response nonce spaces disjoint.
constexpr std::uint8_t kDirGuestToSp = 0x47;  // 'G'
constexpr std::uint8_t kDirSpToGuest = 0x53;  // 'S'

FixedBytes<16> make_nonce(std::uint8_t direction, std::uint64_t seq) {
  FixedBytes<16> nonce;
  nonce[0] = direction;
  for (int i = 0; i < 8; ++i) {
    nonce[8 + i] = static_cast<std::uint8_t>(seq >> (56 - 8 * i));
  }
  return nonce;
}

Bytes make_aad(std::uint8_t direction, std::uint64_t seq) {
  Bytes aad;
  append_u8(aad, direction);
  append_u64be(aad, seq);
  return aad;
}

}  // namespace

GuestChannel::GuestChannel(AmdSp& sp, Bytes vmpck)
    : sp_(&sp), aead_(vmpck) {}

Result<GuestChannel> GuestChannel::open(AmdSp& sp) {
  // The VMPCK is measurement-bound: a different guest on the same chip gets
  // a different channel key.
  KeyDerivationPolicy policy;
  policy.mix_measurement = true;
  policy.context = "vmpck-0";
  auto vmpck = sp.derive_key(policy, crypto::AeadCtrHmac::kKeySize);
  if (!vmpck.ok()) return vmpck.error();
  return GuestChannel(sp, std::move(*vmpck));
}

Bytes GuestChannel::seal_request(ByteView plaintext) const {
  return aead_.seal(make_nonce(kDirGuestToSp, guest_seq_).view(),
                    make_aad(kDirGuestToSp, guest_seq_), plaintext);
}

Result<Bytes> GuestChannel::deliver_to_sp(ByteView sealed_request) {
  // SP side: unseal at the expected sequence number; a replayed or reordered
  // message fails authentication because the AAD embeds the sequence.
  auto plaintext = aead_.open(make_aad(kDirGuestToSp, sp_expected_seq_),
                              sealed_request);
  if (!plaintext.ok()) {
    obs::metrics()
        .counter("sevsnp.channel.auth_fail.count", {{"side", "sp"}})
        .inc();
    return Error::make("snp.channel_auth_failed",
                       "sealed request rejected (replay or tamper?)");
  }
  const std::uint64_t seq = sp_expected_seq_++;
  auto response = handle_request(*plaintext);
  if (!response.ok()) return response.error();
  return aead_.seal(make_nonce(kDirSpToGuest, seq).view(),
                    make_aad(kDirSpToGuest, seq), *response);
}

Result<Bytes> GuestChannel::handle_request(ByteView plaintext) const {
  if (plaintext.empty()) return Error::make("snp.empty_request");
  const std::uint8_t type = plaintext[0];
  const ByteView body = plaintext.subspan(1);
  switch (type) {
    case kMsgReportReq: {
      if (body.size() != ReportData::size()) {
        return Error::make("snp.bad_report_data_size");
      }
      auto report = sp_->get_report(ReportData::from(body));
      if (!report.ok()) return report.error();
      return report->serialize();
    }
    case kMsgKeyReq: {
      if (body.size() < 1 + 1 + 4 + 4) {
        return Error::make("snp.bad_key_request");
      }
      KeyDerivationPolicy policy;
      policy.mix_measurement = body[0] != 0;
      policy.mix_policy = body[1] != 0;
      const std::uint32_t ctx_len = read_u32be(body, 2);
      if (6 + ctx_len + 4 > body.size()) {
        return Error::make("snp.bad_key_request", "context length");
      }
      policy.context = to_string(body.subspan(6, ctx_len));
      const std::uint32_t key_len = read_u32be(body, 6 + ctx_len);
      if (key_len == 0 || key_len > 1024) {
        return Error::make("snp.bad_key_request", "key length");
      }
      return sp_->derive_key(policy, key_len);
    }
    case kMsgRtmrExtend: {
      if (body.size() != 1 + Measurement::size()) {
        return Error::make("snp.bad_rtmr_request");
      }
      const std::size_t index = body[0];
      const Measurement digest = Measurement::from(body.subspan(1));
      if (auto st = sp_->rtmr_extend(index, digest); !st.ok()) {
        return st.error();
      }
      return to_bytes(std::string_view("ok"));
    }
    case kMsgCounterReq: {
      // Body: u8 slot index, u8 op (0 = read, 1 = increment). Anything
      // else — wrong size, unknown op — is rejected before touching the
      // counter, so a fuzzed body can never move a slot.
      if (body.size() != 2) return Error::make("snp.bad_counter_request");
      if (body[1] > 1) {
        return Error::make("snp.bad_counter_request", "unknown op");
      }
      auto value = body[1] == 1 ? sp_->counter_increment(body[0])
                                : sp_->counter_read(body[0]);
      if (!value.ok()) return value.error();
      Bytes response;
      append_u64be(response, *value);
      return response;
    }
    default:
      return Error::make("snp.unknown_message_type");
  }
}

Result<Bytes> GuestChannel::transact(ByteView plaintext_request) {
  const std::uint64_t seq = guest_seq_;
  const Bytes sealed = seal_request(plaintext_request);
  ++guest_seq_;
  const auto shuttle = [&]() -> Result<Bytes> {
    return transport_ ? transport_(sealed) : deliver_to_sp(sealed);
  };
  auto sealed_response =
      clock_ != nullptr && retry_
          ? net::with_retries(*clock_, retry_jitter_, *retry_,
                              net::Deadline::unlimited(), "snp.guest_channel",
                              shuttle)
          : shuttle();
  if (!sealed_response.ok()) return sealed_response.error();
  auto response =
      aead_.open(make_aad(kDirSpToGuest, seq), *sealed_response);
  if (!response.ok()) {
    obs::metrics()
        .counter("sevsnp.channel.auth_fail.count", {{"side", "guest"}})
        .inc();
    return Error::make("snp.channel_auth_failed", "response rejected");
  }
  return response;
}

Result<AttestationReport> GuestChannel::request_report(
    const ReportData& report_data) {
  Bytes request;
  append_u8(request, kMsgReportReq);
  append(request, report_data.view());
  auto response = transact(request);
  if (!response.ok()) return response.error();
  return AttestationReport::parse(*response);
}

Status GuestChannel::extend_rtmr(std::size_t index,
                                 const Measurement& event_digest) {
  Bytes request;
  append_u8(request, kMsgRtmrExtend);
  append_u8(request, static_cast<std::uint8_t>(index));
  append(request, event_digest.view());
  auto response = transact(request);
  if (!response.ok()) return response.error();
  return Status::success();
}

Result<std::uint64_t> GuestChannel::request_counter(std::size_t index,
                                                    bool increment) {
  Bytes request;
  append_u8(request, kMsgCounterReq);
  append_u8(request, static_cast<std::uint8_t>(index));
  append_u8(request, increment ? 1 : 0);
  auto response = transact(request);
  if (!response.ok()) return response.error();
  if (response->size() != 8) {
    return Error::make("snp.bad_counter_response");
  }
  return read_u64be(*response, 0);
}

Result<Bytes> GuestChannel::request_key(const KeyDerivationPolicy& policy,
                                        std::size_t length) {
  Bytes request;
  append_u8(request, kMsgKeyReq);
  append_u8(request, policy.mix_measurement ? 1 : 0);
  append_u8(request, policy.mix_policy ? 1 : 0);
  append_u32be(request, static_cast<std::uint32_t>(policy.context.size()));
  append(request, policy.context);
  append_u32be(request, static_cast<std::uint32_t>(length));
  return transact(request);
}

}  // namespace revelio::sevsnp

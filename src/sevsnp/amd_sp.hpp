// AMD Secure Processor (AMD-SP) model.
//
// The hardware root of trust of the whole architecture. Each AmdSp instance
// is one physical platform: it holds a chip-unique secret (the analogue of
// the fused chip endorsement seed), derives the Versioned Chip Endorsement
// Key (VCEK) from that secret and the current TCB version, accumulates the
// launch measurement of a guest, signs attestation reports, and derives
// measurement-bound sealing keys (§2.1).
//
// Substitution note: on real silicon the chip secret never leaves the fuse
// bank; here it is a DRBG-generated 32-byte value held privately by this
// object. Everything downstream — derivation, signing, verification — is
// real cryptography.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "crypto/drbg.hpp"
#include "crypto/ecdsa.hpp"
#include "sevsnp/attestation_report.hpp"

namespace revelio::sevsnp {

/// Key-derivation selector for MSG_KEY_REQ (subset of GUEST_FIELD_SELECT).
struct KeyDerivationPolicy {
  bool mix_measurement = true;  // bind to the launch digest
  bool mix_policy = false;      // bind to the guest policy
  std::string context;          // guest-chosen usage label

  friend bool operator==(const KeyDerivationPolicy&,
                         const KeyDerivationPolicy&) = default;
};

class AmdSp {
 public:
  /// `platform_seed` models the per-chip fused entropy.
  AmdSp(ByteView platform_seed, TcbVersion tcb);

  const ChipId& chip_id() const { return chip_id_; }
  TcbVersion tcb() const { return tcb_; }

  /// Firmware update: bumps the TCB, which rotates the VCEK.
  void update_firmware(TcbVersion new_tcb);

  /// VCEK public key for (this chip, given TCB); the KDS uses this when
  /// manufacturing endorsement certificates. The private key never leaves
  /// the AMD-SP.
  Bytes vcek_public_key(TcbVersion tcb) const;

  // --- Launch measurement state machine -------------------------------
  // The hypervisor calls these while building a guest; SNP_LAUNCH_FINISH
  // freezes the digest.

  /// Begins measuring a new guest context with the given policy.
  Status launch_start(std::uint64_t guest_policy);
  /// Extends the launch digest with one blob (firmware pages etc.).
  Status launch_update(ByteView data);
  /// Finalizes the measurement; reports can now be requested.
  Result<Measurement> launch_finish();
  /// Tears down the guest context (VM destroyed).
  void launch_reset();

  bool guest_running() const { return state_ == State::kRunning; }
  std::optional<Measurement> measurement() const {
    if (state_ != State::kRunning) return std::nullopt;
    return measurement_;
  }

  // --- Guest services (MSG_REPORT_REQ / MSG_KEY_REQ) -------------------

  /// Signs an attestation report over the frozen measurement with the
  /// guest-chosen REPORT_DATA (§2.1.1).
  Result<AttestationReport> get_report(const ReportData& report_data) const;

  /// Derives a sealing key bound to this chip and (optionally) the launch
  /// measurement (§2.1.3). Only a guest with an identical measurement on
  /// this platform can re-derive it.
  Result<Bytes> derive_key(const KeyDerivationPolicy& policy,
                           std::size_t length = 32) const;

  /// Extends runtime measurement register `index` with an event digest:
  /// rtmr' = SHA-384(rtmr || digest). The e-vTPM-style runtime-monitoring
  /// extension (see kRtmrCount); subsequent reports carry the new values.
  Status rtmr_extend(std::size_t index, const Measurement& event_digest);

  const std::array<Measurement, kRtmrCount>& rtmrs() const { return rtmrs_; }

  // --- Monotonic counters (rollback defence) ---------------------------
  // Chip-resident NVRAM-style counter slots, bound to the running guest's
  // launch measurement: only the identical image on this chip sees the
  // same slots, and the values live in the AMD-SP — they survive guest
  // teardown, reboot, and any amount of host disk manipulation. A guest
  // that stamps the current counter value into its sealed volume on every
  // write can detect a rolled-back volume on the next boot: the sealed
  // stamp no longer matches the chip's counter, which only ever moved
  // forward (§6.1.4's anti-rollback story applied to persistent state).

  /// Current value of counter `index` (starts at 0). Never advances.
  Result<std::uint64_t> counter_read(std::size_t index) const;
  /// Atomically advances counter `index` and returns the NEW value.
  Result<std::uint64_t> counter_increment(std::size_t index);

  static constexpr std::size_t kCounterSlots = 8;

 private:
  crypto::EcKeyPair vcek_for(TcbVersion tcb) const;

  enum class State { kIdle, kLaunching, kRunning };

  Bytes chip_secret_;
  ChipId chip_id_;
  TcbVersion tcb_;

  State state_ = State::kIdle;
  std::uint64_t guest_policy_ = 0;
  crypto::Sha384 launch_digest_;
  Measurement measurement_;
  std::array<Measurement, kRtmrCount> rtmrs_{};
  /// (measurement bytes, slot) -> value. Keyed by measurement so distinct
  /// images on one chip cannot read or bump each other's counters; kept
  /// across launch_reset — that persistence IS the rollback defence.
  std::map<std::pair<Bytes, std::size_t>, std::uint64_t> counters_;
};

/// Replays an ordered sequence of event digests into the RTMR value a
/// correct AMD-SP would hold — what a verifier computes from a published
/// event log before comparing against the report.
Measurement replay_rtmr(std::span<const Measurement> event_digests);

}  // namespace revelio::sevsnp

// AMD Key Distribution Server (KDS) model.
//
// Serves the endorsement chain a verifier needs (§5.3): the self-signed
// AMD Root Key (ARK) certificate, the AMD SEV Key (ASK) intermediate, and
// per-chip VCEK certificates addressed by (CHIP_ID, TCB version) — the
// lookup the paper's web extension performs against kdsintf.amd.com, and
// whose round trip dominates Table 3's fresh-attestation latency.
#pragma once

#include <map>

#include "crypto/ecdsa.hpp"
#include "pki/ca.hpp"
#include "pki/chain_cache.hpp"
#include "sevsnp/amd_sp.hpp"

namespace revelio::sevsnp {

class KeyDistributionServer {
 public:
  explicit KeyDistributionServer(crypto::HmacDrbg& drbg);

  /// Manufacturing step: AMD registers a produced chip so the KDS can later
  /// endorse its VCEKs.
  void register_platform(const AmdSp& platform);

  /// VCEK certificate for (chip, TCB). Issued lazily, then cached.
  Result<pki::Certificate> fetch_vcek(const ChipId& chip_id, TcbVersion tcb);

  /// Overrides the expiry instant (absolute not_after, µs) of VCEKs
  /// issued from now on (default: a century out, so simulated clocks
  /// never outrun them). Expiry tests use this to place a certificate's
  /// not_after at a chosen instant; already-issued (cached) VCEKs keep
  /// their original window.
  void set_vcek_not_after(std::uint64_t not_after_us) {
    vcek_not_after_us_ = not_after_us;
  }

  const pki::Certificate& ark_certificate() const { return ark_cert_; }
  const pki::Certificate& ask_certificate() const { return ask_cert_; }

  /// Root set a verifier pins (the ARK).
  std::vector<pki::Certificate> trusted_roots() const { return {ark_cert_}; }
  std::vector<pki::Certificate> intermediates() const { return {ask_cert_}; }

 private:
  std::unique_ptr<pki::CertificateAuthority> ark_;
  std::unique_ptr<pki::CertificateAuthority> ask_;
  pki::Certificate ark_cert_;
  pki::Certificate ask_cert_;
  std::map<Bytes, const AmdSp*> platforms_;  // keyed by chip id bytes
  std::map<std::pair<Bytes, std::uint64_t>, pki::Certificate> vcek_cache_;
  std::uint64_t vcek_not_after_us_ = 0;  // 0 = the century default
};

/// Full report verification as the paper's web extension performs it
/// (§5.3.2): VCEK chain to the ARK, report signature against the VCEK,
/// and optionally a minimum TCB. Returns the verified report fields.
struct ReportVerifyOptions {
  std::uint64_t now_us = 0;
  std::optional<TcbVersion> minimum_tcb;
  /// Optional memoization of the VCEK chain walk: verifiers that see the
  /// same ARK/ASK/VCEK every session (the web extension, secure-channel
  /// peers) skip the two chain signature checks on a hit.
  pki::ChainVerifier* chain_cache = nullptr;
};

Status verify_report(const AttestationReport& report,
                     const pki::Certificate& vcek_cert,
                     const std::vector<pki::Certificate>& intermediates,
                     const std::vector<pki::Certificate>& roots,
                     const ReportVerifyOptions& options);

/// Chain-checked, decoded inputs for a report-signature check that runs out
/// of line — the handle a batch verifier carries between the two halves of
/// a split verify_report.
struct PreparedReportVerify {
  crypto::Curve::Point vcek_pub;
  crypto::EcdsaSignature signature;
  crypto::Digest48 digest;  // SHA-384 over the report's signed body
};

/// First half of verify_report: the VCEK chain walk, public-key and
/// signature decoding, and the signed-body digest — everything except the
/// ECDSA equation itself. Error codes and messages are byte-identical to
/// verify_report, so blocking and batched verifiers are indistinguishable
/// to callers and audit logs.
Result<PreparedReportVerify> prepare_report_verify(
    const AttestationReport& report, const pki::Certificate& vcek_cert,
    const std::vector<pki::Certificate>& intermediates,
    const std::vector<pki::Certificate>& roots,
    const ReportVerifyOptions& options);

/// Second half: folds the out-of-line signature verdict back into the
/// single-path result (snp.signature_invalid on false) and applies the
/// optional TCB floor. Callers pair it with record_report_verify_result so
/// the sevsnp.report_verify counters match the blocking path.
Status finish_report_verify(const AttestationReport& report,
                            bool signature_ok,
                            const ReportVerifyOptions& options);

/// Emits the sevsnp.report_verify.result counter verify_report would emit
/// for `st`. Split verifiers call this once per report.
void record_report_verify_result(const Status& st);

}  // namespace revelio::sevsnp

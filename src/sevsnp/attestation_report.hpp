// SEV-SNP attestation report (ATTESTATION_REPORT structure).
//
// Field-for-field model of the report the AMD-SP returns to a guest via
// MSG_REPORT_REQ: launch measurement (SHA-384), 64 bytes of guest-chosen
// REPORT_DATA, the platform's CHIP_ID, the reported TCB version, the guest
// policy, and an ECDSA P-384 signature by the VCEK over everything above.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/sha2.hpp"

namespace revelio::sevsnp {

/// SEV-SNP TCB version: per-component security patch levels packed the way
/// the firmware reports them.
struct TcbVersion {
  std::uint8_t bootloader = 0;
  std::uint8_t tee = 0;
  std::uint8_t snp = 0;
  std::uint8_t microcode = 0;

  std::uint64_t encode() const {
    return (static_cast<std::uint64_t>(microcode) << 56) |
           (static_cast<std::uint64_t>(snp) << 48) |
           (static_cast<std::uint64_t>(tee) << 8) |
           static_cast<std::uint64_t>(bootloader);
  }
  static TcbVersion decode(std::uint64_t v) {
    return TcbVersion{static_cast<std::uint8_t>(v),
                      static_cast<std::uint8_t>(v >> 8),
                      static_cast<std::uint8_t>(v >> 48),
                      static_cast<std::uint8_t>(v >> 56)};
  }
  friend bool operator==(const TcbVersion&, const TcbVersion&) = default;
  /// a >= b componentwise — the anti-rollback comparison verifiers apply.
  bool at_least(const TcbVersion& other) const {
    return bootloader >= other.bootloader && tee >= other.tee &&
           snp >= other.snp && microcode >= other.microcode;
  }
};

using ChipId = FixedBytes<64>;
using ReportData = FixedBytes<64>;
using Measurement = crypto::Digest48;  // SHA-384 launch digest

/// Number of runtime measurement registers. SEV-SNP itself has no RTMRs
/// (TDX does); this models the e-vTPM extension the paper's related work
/// points to (Narayanan et al.) for runtime monitoring: registers the
/// guest extends after launch, reflected in every subsequent report.
constexpr std::size_t kRtmrCount = 4;

struct AttestationReport {
  std::uint32_t version = 2;
  std::uint64_t guest_policy = 0;
  Measurement measurement;
  ReportData report_data;
  ChipId chip_id;
  TcbVersion reported_tcb;
  std::uint32_t vmpl = 0;
  std::array<Measurement, kRtmrCount> rtmrs;  // runtime measurements
  Bytes signature;  // ECDSA P-384 (r||s) by the VCEK

  /// Canonical serialization of the signed portion.
  Bytes signed_body() const;

  Bytes serialize() const;
  static Result<AttestationReport> parse(ByteView data);
};

}  // namespace revelio::sevsnp

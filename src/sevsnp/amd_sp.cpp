#include "sevsnp/amd_sp.hpp"

#include "crypto/hmac.hpp"
#include "crypto/kdf.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace revelio::sevsnp {

AmdSp::AmdSp(ByteView platform_seed, TcbVersion tcb) : tcb_(tcb) {
  crypto::HmacDrbg drbg(platform_seed,
                        to_bytes(std::string_view("amd-sp-chip-secret")));
  chip_secret_ = drbg.generate(32);
  // CHIP_ID is public and derived from (but does not reveal) the secret.
  const auto id_lo = crypto::hmac_sha256(
      chip_secret_, to_bytes(std::string_view("chip-id-lo")));
  const auto id_hi = crypto::hmac_sha256(
      chip_secret_, to_bytes(std::string_view("chip-id-hi")));
  chip_id_ = ChipId::from(concat(id_lo.view(), id_hi.view()));
}

void AmdSp::update_firmware(TcbVersion new_tcb) { tcb_ = new_tcb; }

crypto::EcKeyPair AmdSp::vcek_for(TcbVersion tcb) const {
  // VCEK = KDF(chip secret, TCB) — the "versioned" in Versioned Chip
  // Endorsement Key: a firmware update yields a fresh signing key.
  Bytes info = to_bytes(std::string_view("vcek-derivation"));
  append_u64be(info, tcb.encode());
  const Bytes seed = crypto::hkdf_sha256(chip_secret_, {}, info, 48);
  crypto::HmacDrbg drbg(seed, to_bytes(std::string_view("vcek-keygen")));
  return crypto::ec_generate(crypto::p384(), drbg);
}

Bytes AmdSp::vcek_public_key(TcbVersion tcb) const {
  return vcek_for(tcb).public_encoded(crypto::p384());
}

Status AmdSp::launch_start(std::uint64_t guest_policy) {
  if (state_ != State::kIdle) {
    return Error::make("snp.launch_in_progress",
                       "guest context already active");
  }
  state_ = State::kLaunching;
  guest_policy_ = guest_policy;
  launch_digest_ = crypto::Sha384();
  return Status::success();
}

Status AmdSp::launch_update(ByteView data) {
  if (state_ != State::kLaunching) {
    return Error::make("snp.not_launching",
                       "launch_update outside launch window");
  }
  // Length-prefix each extend so blob boundaries are part of the digest.
  Bytes framed;
  append_u64be(framed, data.size());
  launch_digest_.update(framed);
  launch_digest_.update(data);
  return Status::success();
}

Result<Measurement> AmdSp::launch_finish() {
  if (state_ != State::kLaunching) {
    return Error::make("snp.not_launching",
                       "launch_finish outside launch window");
  }
  measurement_ = launch_digest_.finish();
  state_ = State::kRunning;
  return measurement_;
}

void AmdSp::launch_reset() {
  state_ = State::kIdle;
  guest_policy_ = 0;
  measurement_ = Measurement{};
  rtmrs_.fill(Measurement{});
}

Status AmdSp::rtmr_extend(std::size_t index, const Measurement& event_digest) {
  if (state_ != State::kRunning) {
    return Error::make("snp.no_guest", "no measured guest is running");
  }
  if (index >= kRtmrCount) {
    return Error::make("snp.bad_rtmr_index", std::to_string(index));
  }
  crypto::Sha384 h;
  h.update(rtmrs_[index].view());
  h.update(event_digest.view());
  rtmrs_[index] = h.finish();
  return Status::success();
}

Measurement replay_rtmr(std::span<const Measurement> event_digests) {
  Measurement rtmr{};
  for (const auto& digest : event_digests) {
    crypto::Sha384 h;
    h.update(rtmr.view());
    h.update(digest.view());
    rtmr = h.finish();
  }
  return rtmr;
}

Result<AttestationReport> AmdSp::get_report(
    const ReportData& report_data) const {
  if (state_ != State::kRunning) {
    return Error::make("snp.no_guest", "no measured guest is running");
  }
  obs::Span span("sevsnp.report_sign");
  span.attr("tcb", static_cast<std::uint64_t>(tcb_.encode()));
  obs::metrics().counter("sevsnp.report_sign.count").inc();
  AttestationReport report;
  report.guest_policy = guest_policy_;
  report.measurement = measurement_;
  report.report_data = report_data;
  report.chip_id = chip_id_;
  report.reported_tcb = tcb_;
  report.vmpl = 0;
  report.rtmrs = rtmrs_;

  const crypto::EcKeyPair vcek = vcek_for(tcb_);
  const auto hash = crypto::sha384(report.signed_body());
  report.signature = crypto::ecdsa_sign(crypto::p384(), vcek.d, hash.view())
                         .encode(crypto::p384());
  return report;
}

Result<Bytes> AmdSp::derive_key(const KeyDerivationPolicy& policy,
                                std::size_t length) const {
  if (state_ != State::kRunning) {
    return Error::make("snp.no_guest", "no measured guest is running");
  }
  Bytes info = to_bytes(std::string_view("snp-derived-key"));
  append_u8(info, policy.mix_measurement ? 1 : 0);
  if (policy.mix_measurement) append(info, measurement_.view());
  append_u8(info, policy.mix_policy ? 1 : 0);
  if (policy.mix_policy) append_u64be(info, guest_policy_);
  append_u32be(info, static_cast<std::uint32_t>(policy.context.size()));
  append(info, policy.context);
  return crypto::hkdf_sha256(chip_secret_,
                             to_bytes(std::string_view("sealing")), info,
                             length);
}

Result<std::uint64_t> AmdSp::counter_read(std::size_t index) const {
  if (state_ != State::kRunning) {
    return Error::make("snp.no_guest", "no measured guest is running");
  }
  if (index >= kCounterSlots) return Error::make("snp.bad_counter_index");
  const auto it = counters_.find({measurement_.bytes(), index});
  return it == counters_.end() ? 0 : it->second;
}

Result<std::uint64_t> AmdSp::counter_increment(std::size_t index) {
  if (state_ != State::kRunning) {
    return Error::make("snp.no_guest", "no measured guest is running");
  }
  if (index >= kCounterSlots) return Error::make("snp.bad_counter_index");
  return ++counters_[{measurement_.bytes(), index}];
}

}  // namespace revelio::sevsnp

#include "sevsnp/attestation_report.hpp"

namespace revelio::sevsnp {

namespace {
constexpr std::string_view kTag = "SNP-REPORT-V2";
}

Bytes AttestationReport::signed_body() const {
  Bytes out;
  append(out, kTag);
  append_u32be(out, version);
  append_u64be(out, guest_policy);
  append(out, measurement.view());
  append(out, report_data.view());
  append(out, chip_id.view());
  append_u64be(out, reported_tcb.encode());
  append_u32be(out, vmpl);
  for (const auto& rtmr : rtmrs) append(out, rtmr.view());
  return out;
}

Bytes AttestationReport::serialize() const {
  Bytes out = signed_body();
  append_u32be(out, static_cast<std::uint32_t>(signature.size()));
  append(out, signature);
  return out;
}

Result<AttestationReport> AttestationReport::parse(ByteView data) {
  const std::size_t body_len =
      kTag.size() + 4 + 8 + 48 + 64 + 64 + 8 + 4 + kRtmrCount * 48;
  if (data.size() < body_len + 4) {
    return Error::make("snp.report_truncated");
  }
  if (to_string(data.subspan(0, kTag.size())) != kTag) {
    return Error::make("snp.bad_report_tag");
  }
  AttestationReport report;
  std::size_t off = kTag.size();
  report.version = read_u32be(data, off);
  off += 4;
  report.guest_policy = read_u64be(data, off);
  off += 8;
  report.measurement = Measurement::from(data.subspan(off, 48));
  off += 48;
  report.report_data = ReportData::from(data.subspan(off, 64));
  off += 64;
  report.chip_id = ChipId::from(data.subspan(off, 64));
  off += 64;
  report.reported_tcb = TcbVersion::decode(read_u64be(data, off));
  off += 8;
  report.vmpl = read_u32be(data, off);
  off += 4;
  for (auto& rtmr : report.rtmrs) {
    rtmr = Measurement::from(data.subspan(off, 48));
    off += 48;
  }
  const std::uint32_t sig_len = read_u32be(data, off);
  off += 4;
  if (off + sig_len > data.size()) {
    return Error::make("snp.report_truncated", "signature");
  }
  report.signature = to_bytes(data.subspan(off, sig_len));
  return report;
}

}  // namespace revelio::sevsnp
